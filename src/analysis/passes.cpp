/**
 * @file
 * The analysis pass pipeline: interprocedural forward dataflow over the
 * recovered CFG (divergence depth, register definedness, constant
 * propagation) and the per-instruction checks built on it. See
 * analysis.h for the check catalogue.
 */

#include "analysis/analysis.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>

#include "analysis/cfg.h"

namespace vortex::analysis {

namespace {

using isa::InstrKind;
using isa::RegFile;
using isa::RegRef;

/** Bit index of a register reference: integer regs 0-31, fp 32-63. */
uint32_t
regBit(const RegRef& r)
{
    return (r.file == RegFile::Fp ? 32u : 0u) + r.idx;
}

/** Registers whose reads are never flagged by the use-before-def pass:
 *  x0, the link/stack/thread pointers, and the callee-saved families
 *  whose save/restore idiom legitimately reads the caller's values. */
constexpr uint64_t
calleeSavedMask()
{
    uint64_t intRegs = (1ull << 0) | (1ull << 1) | (1ull << 2) |
                       (1ull << 3) | (1ull << 4) | (1ull << 8) |
                       (1ull << 9);
    for (uint32_t r = 18; r <= 27; ++r)
        intRegs |= 1ull << r;
    uint64_t fpRegs = (1ull << 8) | (1ull << 9);
    for (uint32_t r = 18; r <= 27; ++r)
        fpRegs |= 1ull << r;
    return intRegs | (fpRegs << 32);
}

constexpr uint64_t kExemptReads = calleeSavedMask();

/** Registers defined on entry to an address-taken (ABI) function: the
 *  exempt set plus the argument registers a0-a7 / fa0-fa7. */
constexpr uint64_t
abiSeedMask()
{
    uint64_t m = calleeSavedMask();
    for (uint32_t r = 10; r <= 17; ++r)
        m |= (1ull << r) | (1ull << (32 + r));
    return m;
}

/** Registers defined on entry to a warp entry point (reset clears the
 *  register files, so only x0 carries a meaningful value). */
constexpr uint64_t kWarpSeed = 1ull << 0;

/** Dataflow state at one program point. */
struct State
{
    bool reached = false;  ///< any path reaches this point
    uint64_t may = 0;      ///< registers written on some path
    uint64_t must = 0;     ///< registers written on every path
    uint32_t constKnown = 1; ///< bit r: int reg r holds constVal[r]
    std::array<uint32_t, 32> constVal{};
    int depth = 0;         ///< open split count along this path
    bool depthKnown = true;///< false after a depth-conflicting merge
};

/** Meet @p b into @p a; returns true when @p a changed. Sets
 *  @p depthConflict when two known-but-different depths merge. */
bool
meet(State& a, const State& b, bool& depthConflict)
{
    if (!b.reached)
        return false;
    if (!a.reached) {
        a = b;
        return true;
    }
    bool changed = false;
    uint64_t may = a.may | b.may;
    uint64_t must = a.must & b.must;
    if (may != a.may || must != a.must) {
        a.may = may;
        a.must = must;
        changed = true;
    }
    uint32_t known = a.constKnown & b.constKnown;
    for (uint32_t r = 1; r < 32; ++r)
        if ((known >> r) & 1u)
            if (a.constVal[r] != b.constVal[r])
                known &= ~(1u << r);
    if (known != a.constKnown) {
        a.constKnown = known;
        changed = true;
    }
    if (a.depthKnown) {
        if (!b.depthKnown) {
            a.depthKnown = false;
            changed = true;
        } else if (a.depth != b.depth) {
            depthConflict = true;
            a.depthKnown = false;
            changed = true;
        }
    }
    return changed;
}

/** What a call does to the caller, and what the capacity/barrier
 *  checks need to know about the callee's transitive behaviour. */
struct FnSummary
{
    uint64_t mayWrite = 0;        ///< regs the function may write
    uint64_t mustDef = ~0ull;     ///< regs defined on every return path
    bool hasBar = false;          ///< executes `bar`, transitively
    bool hasIndirectCall = false; ///< contains a `jalr rd!=x0`
    int maxDepth = 0;             ///< deepest split nesting, transitive
    bool returns = false;         ///< has at least one return path

    bool
    operator==(const FnSummary& o) const
    {
        return mayWrite == o.mayWrite && mustDef == o.mustDef &&
               hasBar == o.hasBar &&
               hasIndirectCall == o.hasIndirectCall &&
               maxDepth == o.maxDepth && returns == o.returns;
    }
};

/** Load/store byte width, 0 for non-memory kinds. */
uint32_t
accessWidth(InstrKind k)
{
    switch (k) {
      case InstrKind::LB: case InstrKind::LBU: case InstrKind::SB:
        return 1;
      case InstrKind::LH: case InstrKind::LHU: case InstrKind::SH:
        return 2;
      case InstrKind::LW: case InstrKind::SW:
      case InstrKind::FLW: case InstrKind::FSW:
        return 4;
      default:
        return 0;
    }
}

/** Constant-fold one integer ALU op; returns false when not folded. */
bool
foldConst(const isa::Instr& in, const State& s, uint32_t& out)
{
    auto known = [&](uint32_t r) {
        return r == 0 || ((s.constKnown >> r) & 1u);
    };
    auto val = [&](uint32_t r) -> uint32_t {
        return r == 0 ? 0 : s.constVal[r];
    };
    uint32_t imm = static_cast<uint32_t>(in.imm);
    switch (in.kind) {
      case InstrKind::LUI:
        out = imm;
        return true;
      case InstrKind::ADDI:
        if (!known(in.rs1))
            return false;
        out = val(in.rs1) + imm;
        return true;
      case InstrKind::ORI:
        if (!known(in.rs1))
            return false;
        out = val(in.rs1) | imm;
        return true;
      case InstrKind::ANDI:
        if (!known(in.rs1))
            return false;
        out = val(in.rs1) & imm;
        return true;
      case InstrKind::XORI:
        if (!known(in.rs1))
            return false;
        out = val(in.rs1) ^ imm;
        return true;
      case InstrKind::SLLI:
        if (!known(in.rs1))
            return false;
        out = val(in.rs1) << (imm & 31u);
        return true;
      case InstrKind::SRLI:
        if (!known(in.rs1))
            return false;
        out = val(in.rs1) >> (imm & 31u);
        return true;
      case InstrKind::ADD:
        if (!known(in.rs1) || !known(in.rs2))
            return false;
        out = val(in.rs1) + val(in.rs2);
        return true;
      case InstrKind::SUB:
        if (!known(in.rs1) || !known(in.rs2))
            return false;
        out = val(in.rs1) - val(in.rs2);
        return true;
      case InstrKind::OR:
        if (!known(in.rs1) || !known(in.rs2))
            return false;
        out = val(in.rs1) | val(in.rs2);
        return true;
      case InstrKind::AND:
        if (!known(in.rs1) || !known(in.rs2))
            return false;
        out = val(in.rs1) & val(in.rs2);
        return true;
      case InstrKind::XOR:
        if (!known(in.rs1) || !known(in.rs2))
            return false;
        out = val(in.rs1) ^ val(in.rs2);
        return true;
      default:
        return false;
    }
}

std::string
hexAddr(Addr pc)
{
    std::ostringstream os;
    os << "0x" << std::hex << pc;
    return os.str();
}

/** The whole-program analysis engine. */
class Engine
{
  public:
    Engine(const isa::Program& program, const AnalyzerOptions& opts)
        : image_(program), opts_(opts)
    {
    }

    Report
    run()
    {
        addEntry(image_.program().entry, EntryKind::WarpEntry);

        // Interprocedural fixpoint: function summaries grow/refine and
        // entry states accumulate call-site meets until nothing moves.
        // Each quantity is monotone, so this terminates; the iteration
        // cap is a safety net for pathological inputs.
        for (int iter = 0; iter < 64; ++iter) {
            bool changed = false;
            for (Addr entry : sortedEntries()) {
                ensureBuilt(entry);
                changed |= analyzeFunction(entry, /*diagnose=*/false);
            }
            if (!changed)
                break;
        }

        for (Addr entry : sortedEntries())
            analyzeFunction(entry, /*diagnose=*/true);
        reportCoverage();

        std::sort(diags_.begin(), diags_.end());
        diags_.erase(std::unique(diags_.begin(), diags_.end()),
                     diags_.end());

        Report report;
        report.diagnostics = std::move(diags_);
        report.functionCount = fns_.size();
        size_t instrs = 0;
        for (const auto& [addr, fn] : fns_)
            instrs += fn.blockOf.size();
        report.instructionCount = instrs;
        report.exercisedChecks.assign(exercised_.begin(),
                                      exercised_.end());
        return report;
    }

  private:
    struct EntryInfo
    {
        std::set<EntryKind> kinds;
        State state; ///< meet of seeds and call-site states
    };

    const CodeImage image_;
    AnalyzerOptions opts_;
    std::map<Addr, Function> fns_;
    std::map<Addr, FnSummary> summaries_;
    std::map<Addr, EntryInfo> entries_;
    std::set<Addr> escaped_;
    bool anyEscapedHasBar_ = false;
    std::vector<Diagnostic> diags_;
    std::set<std::string> exercised_; ///< see Report::exercisedChecks

    /** Record that a check's decision point was evaluated (whether or
     *  not it fired). */
    void
    touch(const char* check)
    {
        exercised_.insert(check);
    }

    std::vector<Addr>
    sortedEntries() const
    {
        std::vector<Addr> out;
        for (const auto& [addr, info] : entries_)
            out.push_back(addr);
        return out;
    }

    void
    addEntry(Addr addr, EntryKind kind)
    {
        EntryInfo& info = entries_[addr];
        if (!info.kinds.insert(kind).second)
            return;
        State seed;
        seed.reached = true;
        switch (kind) {
          case EntryKind::WarpEntry:
            seed.may = seed.must = kWarpSeed;
            break;
          case EntryKind::AddressTaken:
            seed.may = seed.must = abiSeedMask();
            break;
          case EntryKind::Called:
            return; // call sites supply the state
        }
        bool conflict = false;
        meet(info.state, seed, conflict);
    }

    void
    ensureBuilt(Addr entry)
    {
        if (fns_.count(entry))
            return;
        touch("structure.target");
        if (!image_.validPc(entry)) {
            diags_.push_back({Severity::Error, entry, "structure.target",
                              "entry point " + hexAddr(entry) +
                                  " lies outside the code segment"});
            fns_[entry] = Function{};
            return;
        }
        EntryKind kind = *entries_[entry].kinds.begin();
        fns_[entry] = buildFunction(image_, entry, kind, diags_);
    }

    const FnSummary&
    summaryOf(Addr callee)
    {
        return summaries_[callee]; // default: optimistic
    }

    /**
     * One dataflow round over @p entry's function. With diagnose off,
     * updates entry states of callees and this function's summary and
     * returns whether anything changed; with diagnose on, walks the
     * converged states once more and emits diagnostics.
     */
    bool
    analyzeFunction(Addr entry, bool diagnose)
    {
        auto fnIt = fns_.find(entry);
        if (fnIt == fns_.end() || fnIt->second.blocks.empty())
            return false;
        const Function& fn = fnIt->second;

        std::map<Addr, State> in;
        std::set<Addr> depthConflicts;
        in[fn.entry] = entries_[entry].state;
        in[fn.entry].reached = true;

        std::set<Addr> work{fn.entry};
        // Local fixpoint over the block graph.
        while (!work.empty()) {
            Addr at = *work.begin();
            work.erase(work.begin());
            auto blockIt = fn.blocks.find(at);
            if (blockIt == fn.blocks.end())
                continue;
            const BasicBlock& bb = blockIt->second;
            State st = in[at];
            if (!st.reached)
                continue;
            transferBlock(fn, bb, st, /*diagnose=*/false, nullptr);
            for (Addr succ : bb.succs) {
                bool conflict = false;
                State& dst = in[succ];
                if (meet(dst, st, conflict))
                    work.insert(succ);
                if (conflict)
                    depthConflicts.insert(succ);
            }
        }

        if (diagnose) {
            for (const auto& [addr, bb] : fn.blocks) {
                State st = in[addr];
                if (!st.reached)
                    continue;
                if (depthConflicts.count(addr))
                    diags_.push_back(
                        {Severity::Error, addr, "ipdom.balance",
                         "control-flow paths reach this point at "
                         "different split/join nesting depths"});
                transferBlock(fn, bb, st, /*diagnose=*/true, nullptr);
            }
            maybeReportCapacity(entry);
            return false;
        }

        // Summary + callee entry-state updates.
        FnSummary next;
        next.mustDef = ~0ull;
        bool changed = false;
        for (const auto& [addr, bb] : fn.blocks) {
            State st = in[addr];
            if (!st.reached)
                continue;
            changed |= transferBlock(fn, bb, st, false, &next);
        }
        if (!next.returns)
            next.mustDef = ~0ull; // no return path: callers never resume
        FnSummary& cur = summaries_[entry];
        if (!(cur == next)) {
            cur = next;
            changed = true;
        }
        return changed;
    }

    /**
     * Run @p st through @p bb. In summary mode (@p sum != nullptr)
     * accumulates the function summary and discovers new entries /
     * call-site states; in diagnose mode emits diagnostics. @return
     * whether summary-mode discovery changed global state.
     */
    bool
    transferBlock(const Function& fn, const BasicBlock& bb, State& st,
                  bool diagnose, FnSummary* sum)
    {
        bool changed = false;
        for (size_t i = 0; i < bb.instrs.size(); ++i) {
            const CfgInstr& ci = bb.instrs[i];
            const isa::Instr& in = ci.in;
            bool last = i + 1 == bb.instrs.size();

            if (diagnose)
                checkUses(ci, st);

            // Per-kind checks and effects that need the pre-def state.
            changed |= visitInstr(fn, bb, ci, last, st, diagnose, sum);

            // Definitions.
            RegRef d = in.dst();
            if (d.valid() && d.isWrite()) {
                uint64_t bit = 1ull << regBit(d);
                st.may |= bit;
                st.must |= bit;
                if (sum)
                    sum->mayWrite |= bit;
                if (d.file == RegFile::Int) {
                    uint32_t folded = 0;
                    if (in.kind == InstrKind::AUIPC) {
                        st.constKnown |= 1u << d.idx;
                        st.constVal[d.idx] =
                            ci.pc + static_cast<uint32_t>(in.imm);
                    } else if (foldConst(in, st, folded)) {
                        st.constKnown |= 1u << d.idx;
                        st.constVal[d.idx] = folded;
                    } else {
                        st.constKnown &= ~(1u << d.idx);
                    }
                }
            }
        }
        return changed;
    }

    /** Read-before-def diagnostics for every source operand. */
    void
    checkUses(const CfgInstr& ci, const State& st)
    {
        for (const RegRef& r :
             {ci.in.src1(), ci.in.src2(), ci.in.src3()}) {
            if (!r.valid() || (r.file == RegFile::Int && r.idx == 0))
                continue;
            uint64_t bit = 1ull << regBit(r);
            if (bit & kExemptReads)
                continue;
            touch("reg.undef");
            touch("reg.maybe-undef");
            const char* name = r.file == RegFile::Fp
                                   ? isa::fpRegName(r.idx)
                                   : isa::intRegName(r.idx);
            if (!(st.may & bit))
                diags_.push_back(
                    {Severity::Error, ci.pc, "reg.undef",
                     std::string("register ") + name +
                         " is read but never written on any path to "
                         "this instruction"});
            else if (!(st.must & bit))
                diags_.push_back(
                    {Severity::Warning, ci.pc, "reg.maybe-undef",
                     std::string("register ") + name +
                         " may be read before it is written (defined "
                         "on some paths only)"});
        }
    }

    /** Constant value of integer register @p r at @p st, if known. */
    bool
    constOf(const State& st, uint32_t r, uint32_t& v) const
    {
        if (r == 0) {
            v = 0;
            return true;
        }
        if ((st.constKnown >> r) & 1u) {
            v = st.constVal[r];
            return true;
        }
        return false;
    }

    /** True when @p addr starts a plausible code entry (in-segment,
     *  aligned, first word decodes). */
    bool
    plausibleEntry(uint32_t addr) const
    {
        return image_.validPc(addr) && image_.decode(addr).valid();
    }

    /** Record an escaped function-pointer constant. */
    bool
    noteEscape(uint32_t addr)
    {
        if (!plausibleEntry(addr) || escaped_.count(addr))
            return false;
        escaped_.insert(addr);
        addEntry(addr, EntryKind::AddressTaken);
        return true;
    }

    /** Apply a call's effect on the caller state. */
    void
    applyCall(State& st, const FnSummary& callee, uint32_t linkReg)
    {
        st.may |= callee.mayWrite;
        st.must |= callee.mustDef == ~0ull ? 0 : callee.mustDef;
        if (linkReg != 0) {
            uint64_t bit = 1ull << linkReg;
            st.may |= bit;
            st.must |= bit;
        }
        uint32_t clobbered =
            static_cast<uint32_t>(callee.mayWrite & 0xFFFFFFFFull);
        st.constKnown &= ~clobbered | 1u;
        if (linkReg != 0 && linkReg < 32)
            st.constKnown &= ~(1u << linkReg);
    }

    /** Effective transitive barrier behaviour of a summary. */
    bool
    effectiveHasBar(const FnSummary& s) const
    {
        return s.hasBar || (s.hasIndirectCall && anyEscapedHasBar_);
    }

    bool
    visitInstr(const Function& fn, const BasicBlock& bb,
               const CfgInstr& ci, bool last, State& st, bool diagnose,
               FnSummary* sum)
    {
        (void)fn;
        bool changed = false;
        const isa::Instr& in = ci.in;
        uint32_t width = accessWidth(in.kind);
        if (width != 0)
            changed |= visitMemAccess(ci, st, width, diagnose, sum);

        switch (in.kind) {
          case InstrKind::VX_SPLIT:
            if (st.depthKnown) {
                if (diagnose)
                    touch("ipdom.balance");
                ++st.depth;
                if (sum)
                    sum->maxDepth = std::max(sum->maxDepth, st.depth);
            }
            break;

          case InstrKind::VX_JOIN:
            if (st.depthKnown) {
                if (diagnose)
                    touch("ipdom.balance");
                if (st.depth == 0) {
                    if (diagnose)
                        diags_.push_back(
                            {Severity::Error, ci.pc, "ipdom.balance",
                             "join without a matching split on this "
                             "path (IPDOM stack underflow)"});
                } else {
                    --st.depth;
                }
            }
            break;

          case InstrKind::VX_BAR: {
            if (sum)
                sum->hasBar = true;
            if (diagnose && st.depthKnown)
                touch("barrier.divergence");
            if (diagnose && st.depthKnown && st.depth > 0)
                diags_.push_back(
                    {Severity::Error, ci.pc, "barrier.divergence",
                     "bar executed under divergent control flow (" +
                         std::to_string(st.depth) +
                         " open split(s)): the wavefront re-arrives "
                         "per replayed path and deadlocks"});
            uint32_t id = 0, count = 0;
            if (diagnose && constOf(st, in.rs1, id) &&
                constOf(st, in.rs2, count)) {
                touch("barrier.count");
                bool global = (id & 0x80000000u) != 0;
                uint32_t budget = global
                                      ? opts_.numWarps * opts_.numCores
                                      : opts_.numWarps;
                if (count > budget)
                    diags_.push_back(
                        {Severity::Error, ci.pc, "barrier.count",
                         std::string(global ? "global" : "local") +
                             " barrier expects " +
                             std::to_string(count) +
                             " wavefront arrivals but the machine has "
                             "only " +
                             std::to_string(budget) +
                             ": the barrier can never fire"});
            }
            break;
          }

          case InstrKind::VX_TMC: {
            uint32_t n = 0;
            if (diagnose && constOf(st, in.rs1, n))
                touch("tmc.budget");
            if (diagnose && constOf(st, in.rs1, n) &&
                n > opts_.numThreads && n != 0)
                diags_.push_back(
                    {Severity::Error, ci.pc, "tmc.budget",
                     "tmc enables " + std::to_string(n) +
                         " threads but the wavefront has only " +
                         std::to_string(opts_.numThreads)});
            break;
          }

          case InstrKind::VX_WSPAWN: {
            uint32_t n = 0, target = 0;
            if (diagnose) {
                touch("wspawn.target");
                if (constOf(st, in.rs1, n))
                    touch("wspawn.budget");
            }
            if (diagnose && constOf(st, in.rs1, n) &&
                n > opts_.numWarps)
                diags_.push_back(
                    {Severity::Error, ci.pc, "wspawn.budget",
                     "wspawn activates " + std::to_string(n) +
                         " wavefronts but the core has only " +
                         std::to_string(opts_.numWarps)});
            if (constOf(st, in.rs2, target)) {
                if (!plausibleEntry(target)) {
                    if (diagnose)
                        diags_.push_back(
                            {Severity::Error, ci.pc, "wspawn.target",
                             "wspawn target " + hexAddr(target) +
                                 " is not a valid code address"});
                } else if (sum && !entries_.count(target)) {
                    addEntry(target, EntryKind::WarpEntry);
                    changed = true;
                }
            } else if (diagnose) {
                diags_.push_back(
                    {Severity::Warning, ci.pc, "wspawn.target",
                     "wspawn target is not statically resolvable; "
                     "spawned code is not analyzed from here"});
            }
            break;
          }

          default:
            break;
        }

        if (!last)
            return changed;

        // Terminator effects.
        switch (bb.term) {
          case TermKind::Call: {
            changed |= visitEscapes(ci, st, sum);
            const FnSummary& callee = summaryOf(bb.callee);
            if (sum) {
                if (!entries_.count(bb.callee)) {
                    addEntry(bb.callee, EntryKind::Called);
                    changed = true;
                }
                // The callee starts after the jal wrote the link reg.
                State atCall = st;
                if (in.rd != 0) {
                    uint64_t link = 1ull << in.rd;
                    atCall.may |= link;
                    atCall.must |= link;
                }
                atCall.depth = 0;
                atCall.depthKnown = true;
                bool conflict = false;
                changed |=
                    meet(entries_[bb.callee].state, atCall, conflict);
                sum->mayWrite |= callee.mayWrite;
                sum->hasBar |= callee.hasBar;
                sum->hasIndirectCall |= callee.hasIndirectCall;
                if (st.depthKnown)
                    sum->maxDepth = std::max(
                        sum->maxDepth, st.depth + callee.maxDepth);
            }
            if (diagnose && st.depthKnown && st.depth > 0)
                touch("barrier.divergence");
            if (diagnose && st.depthKnown && st.depth > 0 &&
                effectiveHasBar(callee))
                diags_.push_back(
                    {Severity::Error, ci.pc, "barrier.divergence",
                     "call to " + image_.symbolFor(bb.callee) +
                         " inside a split region reaches a barrier "
                         "under divergent control flow"});
            applyCall(st, callee, in.rd);
            break;
          }
          case TermKind::IndirectCall: {
            changed |= visitEscapes(ci, st, sum);
            if (sum) {
                sum->hasIndirectCall = true;
                sum->mayWrite = ~0ull;
            }
            if (diagnose && st.depthKnown && st.depth > 0)
                touch("barrier.divergence");
            if (diagnose && st.depthKnown && st.depth > 0 &&
                anyEscapedHasBar_)
                diags_.push_back(
                    {Severity::Error, ci.pc, "barrier.divergence",
                     "indirect call inside a split region may reach a "
                     "barrier under divergent control flow"});
            FnSummary unknown;
            unknown.mayWrite = ~0ull;
            unknown.mustDef = 0;
            applyCall(st, unknown, in.rd);
            break;
          }
          case TermKind::Return:
            if (diagnose && st.depthKnown)
                touch("ipdom.balance");
            if (diagnose && st.depthKnown && st.depth != 0)
                diags_.push_back(
                    {Severity::Error, ci.pc, "ipdom.balance",
                     "function returns with " +
                         std::to_string(st.depth) +
                         " unclosed split(s)"});
            if (sum) {
                sum->returns = true;
                sum->mustDef &= st.must;
            }
            break;
          case TermKind::Halt:
            if (diagnose && st.depthKnown && st.depth > 0)
                diags_.push_back(
                    {Severity::Warning, ci.pc, "ipdom.balance",
                     "wavefront halts with " +
                         std::to_string(st.depth) +
                         " open split(s); suspended threads never "
                         "resume"});
            break;
          case TermKind::Fall:
          case TermKind::Jump:
          case TermKind::Branch:
          case TermKind::Broken:
            break;
        }
        return changed;
    }

    /** Escaped-function-pointer discovery at a call site: a constant
     *  code address sitting in an argument register becomes a
     *  potential indirect-call target / task function. */
    bool
    visitEscapes(const CfgInstr& ci, const State& st, FnSummary* sum)
    {
        (void)ci;
        if (!sum)
            return false;
        bool changed = false;
        for (uint32_t r = 10; r <= 17; ++r) {
            uint32_t v = 0;
            if (constOf(st, r, v))
                changed |= noteEscape(v);
        }
        return changed;
    }

    bool
    visitMemAccess(const CfgInstr& ci, const State& st, uint32_t width,
                   bool diagnose, FnSummary* sum)
    {
        const isa::Instr& in = ci.in;
        bool store = in.isStore();
        uint32_t base = 0;
        if (store && sum) {
            // A constant code pointer stored to memory escapes (the
            // runtime publishes task functions through scratchpad).
            uint32_t v = 0;
            uint32_t valueReg = in.rs2;
            if (in.kind != InstrKind::FSW &&
                constOf(st, valueReg, v) && noteEscape(v))
                return true;
        }
        if (!diagnose || !constOf(st, in.rs1, base))
            return false;
        uint32_t addr = base + static_cast<uint32_t>(in.imm);
        if (width > 1)
            touch("mem.align");
        if (width > 1 && (addr % width) != 0)
            diags_.push_back(
                {Severity::Error, ci.pc, "mem.align",
                 std::string(store ? "store" : "load") + " of " +
                     std::to_string(width) + " bytes at " +
                     hexAddr(addr) + " is misaligned"});
        if (opts_.memMap.regions.empty())
            return false;
        touch("mem.bounds");
        const MemRegion* region = opts_.memMap.find(addr, width);
        if (store && region)
            touch("mem.code-write");
        if (!region) {
            diags_.push_back(
                {Severity::Error, ci.pc, "mem.bounds",
                 std::string(store ? "store" : "load") + " at " +
                     hexAddr(addr) +
                     " falls outside every mapped memory region"});
        } else if (store && !region->writable) {
            diags_.push_back(
                {Severity::Warning, ci.pc, "mem.code-write",
                 "store into the read-only '" + region->name +
                     "' region at " + hexAddr(addr)});
        }
        return false;
    }

    /** IPDOM capacity check for warp entries (2 stack entries per
     *  nested split, see core/emulator.cpp). */
    void
    maybeReportCapacity(Addr entry)
    {
        const EntryInfo& info = entries_[entry];
        if (!info.kinds.count(EntryKind::WarpEntry))
            return;
        touch("ipdom.depth");
        const FnSummary& s = summaries_[entry];
        uint32_t entriesNeeded = 2u * static_cast<uint32_t>(s.maxDepth);
        if (entriesNeeded > opts_.ipdomCapacity)
            diags_.push_back(
                {Severity::Warning, entry, "ipdom.depth",
                 "divergence may nest " + std::to_string(s.maxDepth) +
                     " levels deep (" + std::to_string(entriesNeeded) +
                     " IPDOM entries) but the stack holds only " +
                     std::to_string(opts_.ipdomCapacity)});
    }

    /** Aggregate note about bytes no entry reaches (embedded data or
     *  dead code) — informational, never gating. */
    void
    reportCoverage()
    {
        touch("structure.unreachable");
        std::set<Addr> covered;
        for (const auto& [addr, fn] : fns_)
            for (const auto& [pc, blockStart] : fn.blockOf)
                covered.insert(pc);
        size_t bytes = 0;
        Addr first = 0;
        bool haveFirst = false;
        for (Addr pc = image_.base(); pc + 4 <= image_.execEnd();
             pc += 4) {
            if (covered.count(pc))
                continue;
            bytes += 4;
            if (!haveFirst) {
                first = pc;
                haveFirst = true;
            }
        }
        bytes += (image_.execEnd() - image_.base()) & 3u;
        if (bytes != 0)
            diags_.push_back(
                {Severity::Info, first, "structure.unreachable",
                 std::to_string(bytes) +
                     " byte(s) of the code segment are not reachable "
                     "from any entry (embedded data or dead code)"});
    }
};

} // namespace

Report
analyze(const isa::Program& program, const AnalyzerOptions& opts)
{
    Engine engine(program, opts);
    return engine.run();
}

} // namespace vortex::analysis
