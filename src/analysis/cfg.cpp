/**
 * @file
 * Recursive-descent CFG recovery (see cfg.h).
 */

#include "analysis/cfg.h"

#include <algorithm>
#include <sstream>

namespace vortex::analysis {

namespace {

/** Format an address the way every diagnostic spells them. */
std::string
hexAddr(Addr pc)
{
    std::ostringstream os;
    os << "0x" << std::hex << pc;
    return os.str();
}

/** Registers conventionally used as links: ra and the runtime's t6. */
bool
isLinkReg(uint32_t reg)
{
    return reg == 1 || reg == 31;
}

} // namespace

Addr
BasicBlock::end() const
{
    return instrs.empty() ? start
                          : instrs.back().pc + 4;
}

CodeImage::CodeImage(const isa::Program& program)
    : program_(&program), base_(program.base),
      end_(program.base + static_cast<Addr>(program.image.size()))
{
    execEnd_ = (program.execEnd > base_ && program.execEnd <= end_)
                   ? program.execEnd
                   : end_;
}

bool
CodeImage::validPc(Addr pc) const
{
    return pc >= base_ && pc + 4 <= execEnd_ && (pc & 3u) == 0;
}

uint32_t
CodeImage::word(Addr pc) const
{
    size_t off = pc - base_;
    const uint8_t* p = program_->image.data() + off;
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

isa::Instr
CodeImage::decode(Addr pc) const
{
    return isa::decode(word(pc));
}

std::string
CodeImage::symbolFor(Addr pc) const
{
    const std::string* best = nullptr;
    Addr bestAddr = 0;
    for (const auto& [name, addr] : program_->symbols) {
        if (addr > pc || addr < base_ || addr >= end_)
            continue;
        if (!best || addr > bestAddr ||
            (addr == bestAddr && name < *best)) {
            best = &name;
            bestAddr = addr;
        }
    }
    if (!best)
        return "pc " + hexAddr(pc);
    if (bestAddr == pc)
        return *best;
    return *best + "+" + std::to_string(pc - bestAddr);
}

bool
blockLocalConst(const BasicBlock& block, size_t at, uint32_t reg,
                uint32_t& value)
{
    if (reg == 0) {
        value = 0;
        return true;
    }
    using K = isa::InstrKind;
    for (size_t i = at; i-- > 0;) {
        const isa::Instr& in = block.instrs[i].in;
        isa::RegRef d = in.dst();
        if (d.file != isa::RegFile::Int || d.idx != reg)
            continue;
        if (in.kind == K::ADDI && in.rs1 == 0) {
            value = static_cast<uint32_t>(in.imm);
            return true;
        }
        if (in.kind == K::LUI) {
            value = static_cast<uint32_t>(in.imm);
            return true;
        }
        if (in.kind == K::ADDI && in.rs1 == reg && i > 0) {
            // li's lui+addi pair: resolve the lui half recursively.
            uint32_t hi = 0;
            if (blockLocalConst(block, i, reg, hi)) {
                value = hi + static_cast<uint32_t>(in.imm);
                return true;
            }
            return false;
        }
        return false; // written by something we do not fold
    }
    return false;
}

namespace {

/** Classification of one decoded instruction for block building. */
struct Step
{
    TermKind term = TermKind::Fall; ///< Fall = not a terminator
    bool terminates = false;        ///< ends the block
    Addr target = 0;                ///< branch/jump/call target
    bool hasTarget = false;         ///< target field is meaningful
};

Step
classify(const isa::Instr& in, Addr pc)
{
    using K = isa::InstrKind;
    Step s;
    if (in.isBranch()) {
        s.term = TermKind::Branch;
        s.terminates = true;
        s.target = pc + static_cast<Addr>(in.imm);
        s.hasTarget = true;
        return s;
    }
    switch (in.kind) {
      case K::JAL:
        s.terminates = true;
        s.target = pc + static_cast<Addr>(in.imm);
        s.hasTarget = true;
        s.term = in.rd == 0 ? TermKind::Jump : TermKind::Call;
        return s;
      case K::JALR:
        s.terminates = true;
        s.term = in.rd == 0 ? TermKind::Return : TermKind::IndirectCall;
        return s;
      case K::ECALL:
      case K::EBREAK:
        s.terminates = true;
        s.term = TermKind::Halt;
        return s;
      default:
        return s;
    }
}

} // namespace

Function
buildFunction(const CodeImage& image, Addr entry, EntryKind kind,
              std::vector<Diagnostic>& diags)
{
    Function fn;
    fn.entry = entry;
    fn.kind = kind;
    fn.name = image.symbolFor(entry);

    auto badTarget = [&](Addr from, Addr target, const char* what) {
        std::ostringstream msg;
        msg << what << " target " << "0x" << std::hex << target
            << ((target & 3u) && target >= image.base() &&
                        target < image.end()
                    ? " is not 4-byte aligned"
                    : " lies outside the code segment");
        diags.push_back({Severity::Error, from, "structure.target",
                         msg.str()});
    };

    std::vector<Addr> work{entry};
    while (!work.empty()) {
        Addr at = work.back();
        work.pop_back();
        if (fn.blocks.count(at))
            continue;
        auto inside = fn.blockOf.find(at);
        if (inside != fn.blockOf.end()) {
            // Split the containing block: the tail becomes a new block
            // and the head falls through into it.
            BasicBlock& head = fn.blocks[inside->second];
            BasicBlock tail;
            tail.start = at;
            size_t cut = (at - head.start) / 4;
            tail.instrs.assign(head.instrs.begin() +
                                   static_cast<ptrdiff_t>(cut),
                               head.instrs.end());
            tail.term = head.term;
            tail.succs = std::move(head.succs);
            tail.callee = head.callee;
            head.instrs.resize(cut);
            head.term = TermKind::Fall;
            head.succs = {at};
            head.callee = 0;
            for (const CfgInstr& ci : tail.instrs)
                fn.blockOf[ci.pc] = at;
            fn.blocks[at] = std::move(tail);
            continue;
        }

        BasicBlock bb;
        bb.start = at;
        Addr pc = at;
        while (true) {
            if (fn.blocks.count(pc) || fn.blockOf.count(pc)) {
                // Ran into already-decoded code: fall through. If pc is
                // a block interior, re-queueing it splits that block so
                // the edge lands on a real leader.
                bb.term = TermKind::Fall;
                bb.succs = {pc};
                if (!fn.blocks.count(pc))
                    work.push_back(pc);
                break;
            }
            if (!image.validPc(pc)) {
                std::ostringstream msg;
                if (pc >= image.end())
                    msg << "control flow falls off the end of the code "
                           "segment";
                else
                    msg << "control flow reaches unmapped or misaligned "
                           "pc 0x"
                        << std::hex << pc;
                diags.push_back({Severity::Error,
                                 bb.instrs.empty() ? pc
                                                   : bb.instrs.back().pc,
                                 "structure.falloff", msg.str()});
                bb.term = TermKind::Broken;
                break;
            }
            isa::Instr in = image.decode(pc);
            if (!in.valid()) {
                std::ostringstream msg;
                msg << "invalid instruction encoding 0x" << std::hex
                    << image.word(pc) << " on a reachable path";
                diags.push_back({Severity::Error, pc, "structure.decode",
                                 msg.str()});
                bb.term = TermKind::Broken;
                break;
            }
            bb.instrs.push_back({pc, in});
            fn.blockOf[pc] = at;

            Step s = classify(in, pc);
            if (!s.terminates) {
                // A `tmc` whose operand is a block-local constant zero
                // retires the wavefront: treat it as a halt so the
                // bytes after it (typically another function) are not
                // swallowed into this block.
                if (in.kind == isa::InstrKind::VX_TMC) {
                    uint32_t v = 0;
                    if (blockLocalConst(bb, bb.instrs.size() - 1, in.rs1,
                                        v) &&
                        v == 0) {
                        bb.term = TermKind::Halt;
                        break;
                    }
                }
                pc += 4;
                continue;
            }

            bb.term = s.term;
            switch (s.term) {
              case TermKind::Jump:
                if (!image.validPc(s.target)) {
                    badTarget(pc, s.target, "jump");
                    bb.term = TermKind::Broken;
                } else {
                    bb.succs = {s.target};
                    work.push_back(s.target);
                }
                break;
              case TermKind::Branch:
                if (!image.validPc(s.target)) {
                    badTarget(pc, s.target, "branch");
                    bb.term = TermKind::Broken;
                } else {
                    bb.succs = {s.target, pc + 4};
                    work.push_back(s.target);
                    work.push_back(pc + 4);
                }
                break;
              case TermKind::Call:
                if (!image.validPc(s.target)) {
                    badTarget(pc, s.target, "call");
                    bb.term = TermKind::Broken;
                } else {
                    bb.callee = s.target;
                    bb.succs = {pc + 4};
                    work.push_back(pc + 4);
                }
                break;
              case TermKind::IndirectCall:
                bb.succs = {pc + 4};
                work.push_back(pc + 4);
                break;
              case TermKind::Return:
                if (!isLinkReg(in.rs1) || in.imm != 0)
                    diags.push_back(
                        {Severity::Warning, pc, "flow.indirect",
                         "indirect jump through " +
                             std::string(isa::intRegName(in.rs1)) +
                             " treated as a function return"});
                break;
              case TermKind::Halt:
              case TermKind::Fall:
              case TermKind::Broken:
                break;
            }
            break;
        }
        fn.blocks[at] = std::move(bb);
    }
    return fn;
}

} // namespace vortex::analysis
