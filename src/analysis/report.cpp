/**
 * @file
 * Diagnostic ordering and report rendering (text and JSON).
 */

#include "analysis/analysis.h"

#include <functional>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <tuple>

#include "analysis/cfg.h"
#include "isa/isa.h"

namespace vortex::analysis {

const char*
severityName(Severity s)
{
    switch (s) {
      case Severity::Info:
        return "info";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "unknown";
}

bool
Diagnostic::operator<(const Diagnostic& o) const
{
    // Errors sort before warnings before infos at the same pc.
    auto key = [](const Diagnostic& d) {
        return std::make_tuple(d.pc, -static_cast<int>(d.severity),
                               std::cref(d.check), std::cref(d.message));
    };
    return key(*this) < key(o);
}

bool
Diagnostic::operator==(const Diagnostic& o) const
{
    return severity == o.severity && pc == o.pc && check == o.check &&
           message == o.message;
}

bool
MemRegion::contains(Addr addr, uint32_t len) const
{
    return addr >= base && static_cast<uint64_t>(addr) + len <=
                               static_cast<uint64_t>(base) + size;
}

const MemRegion*
MemMap::find(Addr addr, uint32_t len) const
{
    for (const MemRegion& r : regions)
        if (r.contains(addr, len))
            return &r;
    return nullptr;
}

size_t
Report::count(Severity s) const
{
    size_t n = 0;
    for (const Diagnostic& d : diagnostics)
        if (d.severity == s)
            ++n;
    return n;
}

namespace {

std::string
hexAddr(Addr pc)
{
    std::ostringstream os;
    os << "0x" << std::hex << pc;
    return os.str();
}

/** Disassembled neighbourhood of @p pc, the anchor marked with '>'. */
void
printContext(std::ostream& os, const CodeImage& image, Addr pc)
{
    if (!image.validPc(pc))
        return;
    os << "    in " << image.symbolFor(pc) << ":\n";
    Addr lo = pc >= image.base() + 8 ? pc - 8 : image.base();
    Addr hi = pc + 12 <= image.end() ? pc + 12 : image.end();
    for (Addr at = lo; at + 4 <= hi; at += 4) {
        isa::Instr in = image.decode(at);
        os << "    " << (at == pc ? "> " : "  ") << hexAddr(at) << ": "
           << (in.valid() ? isa::disassemble(in)
                          : ".word " + hexAddr(image.word(at)))
           << "\n";
    }
}

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string& s)
{
    std::ostringstream os;
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c)
                   << std::dec;
            else
                os << c;
        }
    }
    return os.str();
}

} // namespace

void
Report::print(std::ostream& os, const isa::Program* program) const
{
    for (const Diagnostic& d : diagnostics) {
        os << hexAddr(d.pc) << ": " << severityName(d.severity) << ": "
           << d.message << " [" << d.check << "]\n";
        if (program != nullptr) {
            CodeImage image(*program);
            printContext(os, image, d.pc);
        }
    }
    os << functionCount << " function(s), " << instructionCount
       << " instruction(s): " << errors() << " error(s), " << warnings()
       << " warning(s), " << count(Severity::Info) << " note(s)\n";
}

void
Report::writeJson(std::ostream& os, const isa::Program* program) const
{
    os << "{\n";
    if (program != nullptr)
        os << "  \"base\": " << program->base << ",\n"
           << "  \"size\": " << program->image.size() << ",\n";
    os << "  \"functions\": " << functionCount << ",\n"
       << "  \"instructions\": " << instructionCount << ",\n"
       << "  \"errors\": " << errors() << ",\n"
       << "  \"warnings\": " << warnings() << ",\n"
       << "  \"infos\": " << count(Severity::Info) << ",\n"
       << "  \"clean\": " << (clean() ? "true" : "false") << ",\n"
       << "  \"diagnostics\": [";
    bool first = true;
    for (const Diagnostic& d : diagnostics) {
        os << (first ? "\n" : ",\n")
           << "    {\"pc\": " << d.pc << ", \"severity\": \""
           << severityName(d.severity) << "\", \"check\": \""
           << jsonEscape(d.check) << "\", \"message\": \""
           << jsonEscape(d.message) << "\"}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
}

} // namespace vortex::analysis
