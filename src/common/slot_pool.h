/**
 * @file
 * Generation-tagged freelist slot pool for in-flight request tracking.
 *
 * The simulator's request/response matching used to round-trip an
 * unordered_map<reqId, payload> per in-flight request (pending fetches,
 * LSU responses, texture batches, cache fills): one hash insert at issue
 * and one probe + erase at completion, on every simulated event. A
 * SlotPool instead *encodes the slot index in the reqId it hands out*,
 * so completion is an array index. A 24-bit generation tag stored beside
 * each slot (and echoed in the id) preserves the map's error checking:
 * a stale or mismatched id panics exactly like the old "unmatched
 * response" paths, instead of silently aliasing a recycled slot.
 *
 * Id layout (64-bit): `base | generation << 16 | index`. The caller's
 * @p base occupies bits >= 40 and keeps ids from different pools (or
 * different component instances) globally disjoint — e.g. the Core tags
 * each pool with a request-kind nibble, and caches embed their instance
 * id, which response routers rely on for uniqueness. 16 index bits are
 * ample (in-flight populations are queue-depth bounded), buying a
 * 24-bit generation: the stale-id check only false-negatives if one
 * slot is recycled exactly a multiple of 2^24 times between a request
 * and its duplicate/stale completion — probabilistic where the old maps
 * were exact, but astronomically far from any real in-flight window.
 */

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.h"

namespace vortex {

/** Freelist pool of T payloads addressed by generation-tagged ids. */
template <typename T>
class SlotPool
{
  public:
    /** A pool whose ids carry @p base in the bits above the index and
     *  generation fields (base must not intrude below bit 40); @p name
     *  appears in stale-id panics. */
    explicit SlotPool(uint64_t base = 0, const char* name = "slot_pool")
        : base_(base), name_(name)
    {
        if (base & ((1ull << 40) - 1))
            panic("SlotPool '", name,
                  "': base intrudes on index/generation bits");
    }

    /** Store @p value in a free slot and return its request id. */
    uint64_t
    alloc(T&& value)
    {
        uint32_t index;
        if (!freelist_.empty()) {
            index = freelist_.back();
            freelist_.pop_back();
        } else {
            index = static_cast<uint32_t>(slots_.size());
            if (index >= (1u << 16))
                panic("SlotPool '", name_, "': slot space exhausted");
            slots_.emplace_back();
        }
        Slot& slot = slots_[index];
        slot.live = true;
        slot.value = std::move(value);
        ++live_;
        return base_ | (static_cast<uint64_t>(slot.generation) << 16) |
               index;
    }

    /** The payload of @p id; panics on a stale or foreign id. */
    T&
    at(uint64_t id)
    {
        return slot(id).value;
    }

    /** Remove and return the payload of @p id; the slot is recycled
     *  under a bumped generation, so a duplicate completion panics. */
    T
    take(uint64_t id)
    {
        Slot& s = slot(id);
        T value = std::move(s.value);
        s.live = false;
        s.generation = (s.generation + 1) & 0xFFFFFF;
        s.value = T{};
        freelist_.push_back(static_cast<uint32_t>(id & 0xFFFF));
        --live_;
        return value;
    }

    /** Number of live (allocated, not yet taken) entries. */
    size_t size() const { return live_; }
    /** No live entries? */
    bool empty() const { return live_ == 0; }

    /** Drop every live entry (reset path); their ids become stale. */
    void
    clear()
    {
        freelist_.clear();
        for (uint32_t i = 0; i < slots_.size(); ++i) {
            Slot& s = slots_[i];
            if (s.live) {
                s.live = false;
                s.generation = (s.generation + 1) & 0xFFFFFF;
                s.value = T{};
            }
            freelist_.push_back(i);
        }
        live_ = 0;
    }

  private:
    struct Slot
    {
        T value{};
        uint32_t generation = 0; ///< 24-bit, wraps
        bool live = false;
    };

    Slot&
    slot(uint64_t id)
    {
        uint32_t index = static_cast<uint32_t>(id & 0xFFFF);
        uint32_t gen = static_cast<uint32_t>((id >> 16) & 0xFFFFFF);
        if ((id & ~0xFFFFFFFFFFull) != base_ || index >= slots_.size() ||
            !slots_[index].live || slots_[index].generation != gen)
            panic("SlotPool '", name_, "': unmatched request id ", id);
        return slots_[index];
    }

    uint64_t base_;
    const char* name_;
    std::vector<Slot> slots_;
    std::vector<uint32_t> freelist_; ///< indices ready for reuse
    size_t live_ = 0;
};

} // namespace vortex
