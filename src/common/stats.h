/**
 * @file
 * Lightweight named statistics counters. Components expose a StatGroup;
 * benches, the sweep campaign engine, and EXPERIMENTS tooling read them
 * by name.
 *
 * Counter naming conventions:
 *  - keys are lower_snake_case event counts ("core_reads", "mshr_replays",
 *    "fetch_icache_stalls"), monotonically non-decreasing over a run;
 *  - group names are the component instance ("dcache", "memsim"); when
 *    groups are aggregated across a device the flattened key is
 *    "<group>.<key>" (see sweep::Campaign);
 *  - derived metrics (ratios, utilizations) are NOT counters — compute
 *    them from counters at the point of reporting (e.g.
 *    mem::Cache::bankUtilization()).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace vortex {

/**
 * A named collection of 64-bit counters, printed and iterated in
 * insertion order (the order a component first touched each counter —
 * typically its natural event order, not alphabetical).
 *
 * Storage is a deque so counter references stay valid as later keys are
 * inserted; CounterRef exploits that to turn hot-path counter bumps into
 * a single pointer increment (see below).
 */
class StatGroup
{
  public:
    /** A group named @p name (the "<group>" half of flattened
     *  "<group>.<key>" counter names; empty for anonymous groups). */
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** The counter for @p key, created zero on first use. The reference
     *  stays valid for the lifetime of the group (deque storage never
     *  relocates existing entries). */
    uint64_t&
    counter(const std::string& key)
    {
        auto [it, inserted] = index_.try_emplace(key, items_.size());
        if (inserted)
            items_.emplace_back(key, 0);
        return items_[it->second].second;
    }

    /** A cached hot-path handle to counter @p key (see CounterRef below;
     *  defined out of line because CounterRef needs the full group). */
    inline class CounterRef counterRef(std::string key);

    /** Read @p key without creating it (0 when absent). */
    uint64_t
    get(const std::string& key) const
    {
        auto it = index_.find(key);
        return it == index_.end() ? 0 : items_[it->second].second;
    }

    /** Accumulate every counter of @p other into this group (counters new
     *  to this group keep @p other's relative order). */
    void
    add(const StatGroup& other)
    {
        for (const auto& [k, v] : other.items_)
            counter(k) += v;
    }

    /** All (key, value) pairs in insertion order. */
    const std::deque<std::pair<std::string, uint64_t>>&
    all() const
    {
        return items_;
    }

    /** The group (component-instance) name. */
    const std::string& name() const { return name_; }

    /** Print "name.key = value" lines in insertion order. */
    void
    print(std::ostream& os) const
    {
        for (const auto& [k, v] : items_)
            os << name_ << (name_.empty() ? "" : ".") << k << " = " << v
               << "\n";
    }

  private:
    std::string name_;
    std::deque<std::pair<std::string, uint64_t>> items_;
    std::map<std::string, size_t> index_; ///< key -> position in items_
};

/**
 * A cached handle to one StatGroup counter, for hot paths that bump the
 * same counter every simulated event. A plain `g.counter("key")` pays a
 * string hash + map probe per bump; a CounterRef pays it once and then
 * increments through a stable `uint64_t*` (StatGroup's deque storage
 * never relocates entries).
 *
 * Resolution is deliberately *lazy* — the counter is registered on the
 * first bump, not at handle construction — so a group's key set and
 * insertion order remain exactly the first-touch order they had before
 * handles existed. That keeps flattened stats, CSV columns, and
 * time-series keys byte-identical: a counter a run never bumps still
 * never appears. Convention for new hot-path code: resolve a CounterRef
 * member at component construction and bump it with `++ref` / `ref += n`
 * (see ARCHITECTURE.md "Host-performance playbook").
 */
class CounterRef
{
  public:
    /** An unbound handle (never resolvable; for late initialization). */
    CounterRef() = default;

    /** A handle to @p group's counter @p key (not yet registered). */
    CounterRef(StatGroup& group, std::string key)
        : group_(&group), key_(std::move(key))
    {
    }

    /** The counter itself, registering it on first access. */
    uint64_t&
    value()
    {
        if (!ptr_)
            ptr_ = &group_->counter(key_);
        return *ptr_;
    }

    /** Bump by one (`++ref`). */
    uint64_t& operator++() { return ++value(); }
    /** Bump by @p n (`ref += n`). */
    uint64_t& operator+=(uint64_t n) { return value() += n; }

    /** Read without registering (0 while unregistered). */
    uint64_t get() const { return ptr_ ? *ptr_ : 0; }

  private:
    uint64_t* ptr_ = nullptr; ///< resolved on first bump; stable after
    StatGroup* group_ = nullptr;
    std::string key_;
};

inline CounterRef
StatGroup::counterRef(std::string key)
{
    return CounterRef(*this, std::move(key));
}

/**
 * A delta-encoded counter time series: one row per counter key, one
 * column per sample window. Column s covers the cycles
 * (sampleCycles[s-1], sampleCycles[s]] (from cycle 0 for s == 0), and
 * deltas[k][s] is how much counter keys[k] advanced inside that window —
 * so a counter's end-of-run value is the sum of its row, and rate curves
 * (IPC, hit rate, bandwidth) divide a row by the window widths.
 *
 * Samples land on multiples of `interval`; the last window may be a
 * shorter end-of-run remainder (sampleCycles.back() is then the final
 * cycle count). Keys appear in first-seen order; a counter first touched
 * mid-run is backfilled with zero deltas for the windows before it
 * existed, so the rows always form a rectangular matrix.
 */
struct TimeSeries
{
    uint64_t interval = 0; ///< sampling period in cycles (0 = disabled)
    std::vector<uint64_t> sampleCycles; ///< cycle stamp of each sample
    std::vector<std::string> keys;      ///< counter names, first-seen order
    std::vector<std::vector<uint64_t>> deltas; ///< [key][sample] increments

    /** Number of sample windows taken. */
    size_t numSamples() const { return sampleCycles.size(); }

    /** No samples recorded (sampling disabled or the run never ticked). */
    bool empty() const { return sampleCycles.empty(); }

    /** End-of-run total of the row for @p key (0 for an unknown key). */
    uint64_t
    total(const std::string& key) const
    {
        for (size_t k = 0; k < keys.size(); ++k)
            if (keys[k] == key) {
                uint64_t sum = 0;
                for (uint64_t d : deltas[k])
                    sum += d;
                return sum;
            }
        return 0;
    }

    /** Memberwise equality (used by the cache round-trip tests). */
    bool operator==(const TimeSeries&) const = default;
};

/**
 * Periodically snapshots a monotonically non-decreasing StatGroup and
 * delta-encodes the increments into a TimeSeries.
 *
 * The sampler is deliberately passive: the owner decides *when* a cycle
 * boundary is safe to observe (for the simulator that is after the
 * Processor's cross-core commit phase, so the serial and parallel tick
 * backends see bit-identical counters — see core/processor.h) and hands
 * in the flattened snapshot. due() is one load-and-test when disabled, so
 * an idle sampler costs nothing on the hot tick path.
 */
class StatSampler
{
  public:
    /** A sampler firing every @p interval cycles (0 = disabled). */
    explicit StatSampler(uint64_t interval = 0) { series_.interval = interval; }

    /** Was the sampler constructed with a nonzero interval? */
    bool enabled() const { return series_.interval != 0; }

    /** Is @p now a sampling boundary? (false whenever disabled) */
    bool
    due(uint64_t now) const
    {
        return series_.interval != 0 && now % series_.interval == 0;
    }

    /** Record the increments since the previous sample as a new window
     *  stamped @p now. @p snapshot must be monotonically non-decreasing
     *  between calls and @p now strictly increasing. */
    void
    sample(uint64_t now, const StatGroup& snapshot)
    {
        // Register keys new to this snapshot, backfilling zero deltas for
        // the windows recorded before the counter first existed.
        for (const auto& [k, v] : snapshot.all()) {
            (void)v;
            auto [it, inserted] = index_.try_emplace(k, series_.keys.size());
            (void)it;
            if (inserted) {
                series_.keys.push_back(k);
                series_.deltas.emplace_back(series_.numSamples(), 0);
            }
        }
        for (size_t k = 0; k < series_.keys.size(); ++k) {
            const std::string& key = series_.keys[k];
            uint64_t v = snapshot.get(key);
            series_.deltas[k].push_back(v - prev_.get(key));
        }
        series_.sampleCycles.push_back(now);
        prev_ = snapshot;
    }

    /** End-of-run partial window: like sample(), but a no-op when
     *  disabled, when @p now is 0, or when a sample already landed on
     *  @p now (the run ended exactly on a boundary). */
    void
    finalize(uint64_t now, const StatGroup& snapshot)
    {
        if (!enabled() || now == 0)
            return;
        if (!series_.empty() && series_.sampleCycles.back() == now)
            return;
        sample(now, snapshot);
    }

    /** The series recorded so far. */
    const TimeSeries& series() const { return series_; }

  private:
    TimeSeries series_;
    StatGroup prev_; ///< counter values at the previous sample
    std::map<std::string, size_t> index_; ///< key -> row in series_.keys
};

} // namespace vortex
