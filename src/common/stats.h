/**
 * @file
 * Lightweight named statistics counters. Components expose a StatGroup;
 * benches, the sweep campaign engine, and EXPERIMENTS tooling read them
 * by name.
 *
 * Counter naming conventions:
 *  - keys are lower_snake_case event counts ("core_reads", "mshr_replays",
 *    "fetch_icache_stalls"), monotonically non-decreasing over a run;
 *  - group names are the component instance ("dcache", "memsim"); when
 *    groups are aggregated across a device the flattened key is
 *    "<group>.<key>" (see sweep::Campaign);
 *  - derived metrics (ratios, utilizations) are NOT counters — compute
 *    them from counters at the point of reporting (e.g.
 *    mem::Cache::bankUtilization()).
 */

#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace vortex {

/**
 * A named collection of 64-bit counters, printed and iterated in
 * insertion order (the order a component first touched each counter —
 * typically its natural event order, not alphabetical).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** The counter for @p key, created zero on first use. The reference
     *  is invalidated when a *different* key is first inserted — bump in
     *  place (`++g.counter("k")`), don't hold it. */
    uint64_t&
    counter(const std::string& key)
    {
        auto [it, inserted] = index_.try_emplace(key, items_.size());
        if (inserted)
            items_.emplace_back(key, 0);
        return items_[it->second].second;
    }

    /** Read @p key without creating it (0 when absent). */
    uint64_t
    get(const std::string& key) const
    {
        auto it = index_.find(key);
        return it == index_.end() ? 0 : items_[it->second].second;
    }

    /** Accumulate every counter of @p other into this group (counters new
     *  to this group keep @p other's relative order). */
    void
    add(const StatGroup& other)
    {
        for (const auto& [k, v] : other.items_)
            counter(k) += v;
    }

    /** All (key, value) pairs in insertion order. */
    const std::vector<std::pair<std::string, uint64_t>>&
    all() const
    {
        return items_;
    }

    const std::string& name() const { return name_; }

    /** Print "name.key = value" lines in insertion order. */
    void
    print(std::ostream& os) const
    {
        for (const auto& [k, v] : items_)
            os << name_ << (name_.empty() ? "" : ".") << k << " = " << v
               << "\n";
    }

  private:
    std::string name_;
    std::vector<std::pair<std::string, uint64_t>> items_;
    std::map<std::string, size_t> index_; ///< key -> position in items_
};

} // namespace vortex
