/**
 * @file
 * Lightweight named statistics counters. Components expose a StatGroup;
 * benches and EXPERIMENTS tooling read them by name.
 */

#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace vortex {

/** A named collection of 64-bit counters with insertion-order printing. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    uint64_t& counter(const std::string& key) { return counters_[key]; }

    uint64_t
    get(const std::string& key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second;
    }

    void
    add(const StatGroup& other)
    {
        for (const auto& [k, v] : other.counters_)
            counters_[k] += v;
    }

    const std::map<std::string, uint64_t>& all() const { return counters_; }
    const std::string& name() const { return name_; }

    void
    print(std::ostream& os) const
    {
        for (const auto& [k, v] : counters_)
            os << name_ << (name_.empty() ? "" : ".") << k << " = " << v
               << "\n";
    }

  private:
    std::string name_;
    std::map<std::string, uint64_t> counters_;
};

} // namespace vortex
