/**
 * @file
 * A vector with inline storage for the first N elements, for the
 * simulator's per-event payloads (per-thread writeback values, lane
 * addresses, texture lane requests, cache port lists). These are sized by
 * the machine's thread/port count — almost always <= N — so the common
 * case never touches the heap, eliminating the per-instruction
 * malloc/free churn a std::vector payload costs. Larger machines
 * (numThreads > N sweeps) transparently spill to the heap and keep the
 * exact std::vector semantics the timing model relies on.
 *
 * clear() keeps whatever capacity was acquired, so recycling a spilled
 * container (see Core's uop pool) reuses its heap block instead of
 * reallocating it every instruction.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <new>
#include <utility>

namespace vortex {

/** Inline-capacity vector: no heap traffic while size() <= N. */
template <typename T, size_t N>
class SmallVec
{
  public:
    /** An empty vector using the inline storage. */
    SmallVec() = default;

    /** Destroys the elements and frees any spilled heap block. */
    ~SmallVec()
    {
        destroyAll();
        releaseHeap();
    }

    /** Copies @p o's elements (capacity is not copied). */
    SmallVec(const SmallVec& o) { append(o.begin(), o.end()); }

    /** Steals @p o's heap block when spilled, else moves elementwise. */
    SmallVec(SmallVec&& o) noexcept { moveFrom(o); }

    /** Copy-assign @p o's elements. */
    SmallVec&
    operator=(const SmallVec& o)
    {
        if (this != &o)
            assign(o.begin(), o.end());
        return *this;
    }

    /** Move-assign: steals @p o's heap block when spilled. */
    SmallVec&
    operator=(SmallVec&& o) noexcept
    {
        if (this != &o) {
            destroyAll();
            releaseHeap();
            moveFrom(o);
        }
        return *this;
    }

    //
    // std::vector-compatible observers.
    //
    size_t size() const { return size_; }           ///< element count
    bool empty() const { return size_ == 0; }       ///< no elements?
    size_t capacity() const { return cap_; }        ///< without realloc
    T* begin() { return data_; }                    ///< mutable begin
    T* end() { return data_ + size_; }              ///< mutable end
    const T* begin() const { return data_; }        ///< const begin
    const T* end() const { return data_ + size_; }  ///< const end
    T& operator[](size_t i) { return data_[i]; }    ///< unchecked index
    const T& operator[](size_t i) const { return data_[i]; } ///< const
    T& front() { return data_[0]; }                 ///< first element
    const T& front() const { return data_[0]; }     ///< first (const)
    T& back() { return data_[size_ - 1]; }          ///< last element
    const T& back() const { return data_[size_ - 1]; } ///< last (const)

    /** Destroy every element; capacity (inline or heap) is retained. */
    void
    clear()
    {
        destroyAll();
        size_ = 0;
    }

    /** Ensure room for @p n elements without further allocation. */
    void
    reserve(size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    /** Replace the contents with @p n copies of @p v. */
    void
    assign(size_t n, const T& v)
    {
        clear();
        reserve(n);
        for (size_t i = 0; i < n; ++i)
            ::new (static_cast<void*>(data_ + i)) T(v);
        size_ = n;
    }

    /** Replace the contents with the range [@p first, @p last). */
    template <typename It>
    void
    assign(It first, It last)
    {
        clear();
        append(first, last);
    }

    /** Append a copy of @p v (safe for self-insertion, as std::vector). */
    void
    push_back(const T& v)
    {
        if (size_ == cap_) {
            // v may alias an element of this vector: secure it before
            // grow() frees the old buffer.
            T tmp(v);
            grow(cap_ * 2);
            ::new (static_cast<void*>(data_ + size_)) T(std::move(tmp));
        } else {
            ::new (static_cast<void*>(data_ + size_)) T(v);
        }
        ++size_;
    }

    /** Append @p v by move (safe for self-insertion, as std::vector). */
    void
    push_back(T&& v)
    {
        if (size_ == cap_) {
            T tmp(std::move(v));
            grow(cap_ * 2);
            ::new (static_cast<void*>(data_ + size_)) T(std::move(tmp));
        } else {
            ::new (static_cast<void*>(data_ + size_)) T(std::move(v));
        }
        ++size_;
    }

    /** Append the range [@p first, @p last). */
    template <typename It>
    void
    append(It first, It last)
    {
        reserve(size_ + static_cast<size_t>(std::distance(first, last)));
        for (; first != last; ++first)
            push_back(*first);
    }

    /** Elementwise equality. */
    bool
    operator==(const SmallVec& o) const
    {
        if (size_ != o.size_)
            return false;
        for (size_t i = 0; i < size_; ++i) {
            if (!(data_[i] == o.data_[i]))
                return false;
        }
        return true;
    }

  private:
    T* inlineData() { return reinterpret_cast<T*>(inline_); }

    bool onHeap() const
    {
        return data_ != reinterpret_cast<const T*>(inline_);
    }

    void
    destroyAll()
    {
        for (size_t i = 0; i < size_; ++i)
            data_[i].~T();
    }

    /** Free the heap block and fall back to inline storage. */
    void
    releaseHeap()
    {
        if (onHeap())
            ::operator delete(data_);
        data_ = inlineData();
        cap_ = N;
        size_ = 0;
    }

    void
    grow(size_t new_cap)
    {
        if (new_cap < size_ + 1)
            new_cap = size_ + 1;
        T* p = static_cast<T*>(::operator new(new_cap * sizeof(T)));
        for (size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void*>(p + i)) T(std::move(data_[i]));
            data_[i].~T();
        }
        if (onHeap())
            ::operator delete(data_);
        data_ = p;
        cap_ = new_cap;
    }

    /** Take @p o's contents; leaves @p o empty (inline, capacity N). */
    void
    moveFrom(SmallVec& o) noexcept
    {
        if (o.onHeap()) {
            data_ = o.data_;
            size_ = o.size_;
            cap_ = o.cap_;
            o.data_ = o.inlineData();
            o.size_ = 0;
            o.cap_ = N;
            return;
        }
        data_ = inlineData();
        cap_ = N;
        size_ = o.size_;
        for (size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void*>(data_ + i)) T(std::move(o.data_[i]));
            o.data_[i].~T();
        }
        o.size_ = 0;
    }

    alignas(T) unsigned char inline_[N * sizeof(T)]; ///< inline storage
    T* data_ = inlineData();  ///< inline_ until the first spill
    size_t size_ = 0;         ///< live element count
    size_t cap_ = N;          ///< current capacity (>= N)
};

} // namespace vortex
