/**
 * @file
 * Structured run outcomes: the typed error taxonomy for everything that
 * can go wrong *inside* a simulated run (docs/ROBUSTNESS.md).
 *
 * Run-path failures — a guest that hangs, executes an invalid
 * instruction, overflows its divergence stack, or fails its self-check —
 * are recoverable events that one campaign row should record while the
 * rest of the matrix keeps running. They throw SimError (a FatalError
 * subclass, so legacy catch sites keep working) carrying the RunStatus
 * class, and the workload layer translates them into a failed RunResult
 * instead of aborting the process.
 */

#pragma once

#include <string>

#include "common/log.h"

namespace vortex {

/** Classification of how a simulated run ended. */
enum class RunStatus
{
    Ok,            ///< ran to completion (verification may still fail)
    Timeout,       ///< cycle watchdog or host deadline expired (hang)
    GuestTrap,     ///< invalid instruction / divergence-stack trap
    SelfcheckFail, ///< guest reported FAIL (or no verdict) via the mailbox
    HostError,     ///< host-side failure (bad spec, heap exhausted, ...)
};

/** Stable lowercase name of @p s (the CSV/JSON `status` column). */
inline const char*
statusName(RunStatus s)
{
    switch (s) {
    case RunStatus::Ok:
        return "ok";
    case RunStatus::Timeout:
        return "timeout";
    case RunStatus::GuestTrap:
        return "guest_trap";
    case RunStatus::SelfcheckFail:
        return "selfcheck_fail";
    case RunStatus::HostError:
        return "host_error";
    }
    return "?";
}

/**
 * A run-path failure with its RunStatus class attached. Derives from
 * FatalError so existing `catch (const FatalError&)` sites (and tests
 * that expect FatalError from e.g. a watchdog expiry) see it unchanged,
 * while the workload runner can catch SimError first and map it to a
 * structured outcome.
 */
class SimError : public FatalError
{
  public:
    /** A @p status -class failure described by @p what. */
    SimError(RunStatus status, const std::string& what)
        : FatalError(what), status_(status)
    {
    }

    /** The outcome class this failure maps to. */
    RunStatus status() const { return status_; }

  private:
    RunStatus status_;
};

/** Throw a SimError of class @p status with a formatted message. */
template <typename... Args>
[[noreturn]] void
trap(RunStatus status, const Args&... args)
{
    throw SimError(status, detail::concat("trap: ", args...));
}

} // namespace vortex
