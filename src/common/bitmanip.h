/**
 * @file
 * Bit-manipulation helpers used by the ISA layer, the cache geometry
 * computations, and the texture address generator.
 */

#pragma once

#include <cassert>
#include <cstdint>

// Bit-operation helpers want C++20's <bit>, but the header must also work
// (or fail loudly, not with a confusing error inside the function bodies)
// under -std=c++17. Detect std::popcount/std::countr_zero via the
// __cpp_lib_bitops feature-test macro and fall back to compiler builtins
// or a portable loop.
#if defined(__has_include)
#  if __has_include(<version>)
#    include <version>
#  endif
#endif
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
#  include <bit>
#endif

#include "common/types.h"

namespace vortex {

/** @return true iff @p x is a power of two (zero is not). */
constexpr bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** @return ceil(log2(x)); log2Ceil(1) == 0. */
constexpr uint32_t
log2Ceil(uint64_t x)
{
    assert(x != 0);
    uint32_t r = 0;
    uint64_t v = 1;
    while (v < x) {
        v <<= 1;
        ++r;
    }
    return r;
}

/** @return floor(log2(x)); undefined for x == 0. */
constexpr uint32_t
log2Floor(uint64_t x)
{
    assert(x != 0);
    uint32_t r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** Extract bits [lo, lo+len) of @p value. */
constexpr uint32_t
bits(uint32_t value, uint32_t lo, uint32_t len)
{
    assert(len <= 32);
    if (len == 32)
        return value >> lo;
    return (value >> lo) & ((1u << len) - 1u);
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr int32_t
sext(uint32_t value, uint32_t width)
{
    assert(width >= 1 && width <= 32);
    if (width == 32)
        return static_cast<int32_t>(value);
    uint32_t sign = 1u << (width - 1);
    uint32_t mask = (1u << width) - 1u;
    uint32_t v = value & mask;
    return static_cast<int32_t>((v ^ sign) - sign);
}

/** @return a mask with the low @p n bits set (n may be 32). */
constexpr uint32_t
maskLow(uint32_t n)
{
    assert(n <= 32);
    return n == 32 ? ~0u : ((1u << n) - 1u);
}

/** Population count over a plain mask word. */
constexpr uint32_t
popcount(uint64_t x)
{
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
    return static_cast<uint32_t>(std::popcount(x));
#elif defined(__GNUC__) || defined(__clang__)
    return static_cast<uint32_t>(__builtin_popcountll(x));
#else
    uint32_t n = 0;
    for (; x != 0; x &= x - 1)
        ++n;
    return n;
#endif
}

/** Index of the least-significant set bit; undefined for x == 0. */
constexpr uint32_t
ctz(uint64_t x)
{
    assert(x != 0);
#if defined(__cpp_lib_bitops) && __cpp_lib_bitops >= 201907L
    return static_cast<uint32_t>(std::countr_zero(x));
#elif defined(__GNUC__) || defined(__clang__)
    return static_cast<uint32_t>(__builtin_ctzll(x));
#else
    uint32_t n = 0;
    while ((x & 1) == 0) {
        x >>= 1;
        ++n;
    }
    return n;
#endif
}

/** Round @p value up to the next multiple of @p align (a power of two). */
constexpr uint64_t
alignUp(uint64_t value, uint64_t align)
{
    assert(isPow2(align));
    return (value + align - 1) & ~(align - 1);
}

/** @return true iff @p value is aligned to @p align (a power of two). */
constexpr bool
isAligned(uint64_t value, uint64_t align)
{
    assert(isPow2(align));
    return (value & (align - 1)) == 0;
}

} // namespace vortex
