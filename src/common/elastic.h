/**
 * @file
 * Elastic pipeline building blocks (paper §4.4).
 *
 * Vortex enforces an elastic valid/ready handshake across every RTL
 * component; we mirror that in the simulator so back-pressure propagates the
 * same way it does in the hardware. Two primitives cover all uses:
 *
 *  - ElasticQueue<T>: a bounded FIFO with the valid/ready protocol. A
 *    producer may push() while !full(); a consumer may pop() while !empty().
 *    Like the skid-buffered hardware queues, a push and a pop may both happen
 *    in the same simulated cycle.
 *
 *  - LatencyPipe<T>: a fixed-latency shift pipeline modelling a fully
 *    pipelined functional unit (one new entry per cycle, results emerge
 *    `latency` cycles later into an output queue).
 *
 * Requests flowing through elastic connections carry a Tag (instruction PC +
 * wavefront id) used for tracing, exactly as described in Figure 7.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "common/log.h"
#include "common/types.h"

namespace vortex {

/** Trace tag attached to elastic requests: instruction PC + wavefront id. */
struct Tag
{
    Addr pc = 0;      ///< PC of the originating instruction
    WarpId wid = 0;   ///< wavefront that issued the request
    uint64_t uid = 0; ///< unique per-uop id, for tracing and unit tests
};

/**
 * Bounded FIFO with elastic (valid/ready) semantics.
 *
 * capacity() == 0 is disallowed; a queue of capacity 1 behaves like a
 * single pipeline register with back-pressure.
 */
template <typename T>
class ElasticQueue
{
  public:
    /** A queue of @p capacity entries (>= 1, panics otherwise); @p name
     *  appears in protocol-violation panics. */
    explicit ElasticQueue(size_t capacity, const char* name = "queue")
        : capacity_(capacity), name_(name)
    {
        if (capacity == 0)
            panic("ElasticQueue '", name, "' must have capacity >= 1");
    }

    /** Producer side: ready signal. */
    bool full() const { return q_.size() >= capacity_; }

    /** Consumer side: valid signal. */
    bool empty() const { return q_.empty(); }

    /** Entries currently queued. */
    size_t size() const { return q_.size(); }
    /** Maximum entries (the constructor argument). */
    size_t capacity() const { return capacity_; }
    /** Diagnostic name used in panics. */
    const char* name() const { return name_; }

    /** Push; caller must have checked !full(). */
    void
    push(const T& v)
    {
        if (full())
            panic("push to full elastic queue '", name_, "'");
        q_.push_back(v);
        ++totalPushes_;
    }

    /** Move-push; caller must have checked !full(). */
    void
    push(T&& v)
    {
        if (full())
            panic("push to full elastic queue '", name_, "'");
        q_.push_back(std::move(v));
        ++totalPushes_;
    }

    /** Front element; caller must have checked !empty(). */
    T&
    front()
    {
        if (empty())
            panic("front of empty elastic queue '", name_, "'");
        return q_.front();
    }

    /** Const view of the front element; caller must have checked
     *  !empty(). */
    const T&
    front() const
    {
        if (empty())
            panic("front of empty elastic queue '", name_, "'");
        return q_.front();
    }

    /** Pop the front element; caller must have checked !empty(). */
    T
    pop()
    {
        if (empty())
            panic("pop of empty elastic queue '", name_, "'");
        T v = std::move(q_.front());
        q_.pop_front();
        return v;
    }

    /** Drop every queued entry (reset path; totalPushes() survives). */
    void clear() { q_.clear(); }

    /** Lifetime statistics (used by bank-utilization accounting). */
    uint64_t totalPushes() const { return totalPushes_; }

  private:
    std::deque<T> q_;
    size_t capacity_;
    const char* name_;
    uint64_t totalPushes_ = 0;
};

/**
 * Fixed-latency fully-pipelined stage. Accepts at most one entry per cycle;
 * after `latency` ticks the entry appears at the output. The output is an
 * unbounded staging area that the owner drains each cycle (the owning
 * component applies its own back-pressure policy before enqueue).
 */
template <typename T>
class LatencyPipe
{
  public:
    /** A pipe whose entries emerge @p latency cycles after enqueue
     *  (>= 1, panics otherwise). */
    explicit LatencyPipe(uint32_t latency) : latency_(latency)
    {
        if (latency == 0)
            panic("LatencyPipe latency must be >= 1");
    }

    /** Enter a new element this cycle. */
    void
    enqueue(const T& v, Cycle now)
    {
        inflight_.push_back({v, now + latency_});
    }

    /** Enter a new element this cycle by move (payload-carrying ops). */
    void
    enqueue(T&& v, Cycle now)
    {
        inflight_.push_back({std::move(v), now + latency_});
    }

    /** @return the next element whose latency has elapsed, if any. */
    std::optional<T>
    dequeueReady(Cycle now)
    {
        if (!inflight_.empty() && inflight_.front().readyAt <= now) {
            T v = std::move(inflight_.front().value);
            inflight_.pop_front();
            return v;
        }
        return std::nullopt;
    }

    /** Nothing in flight? */
    bool empty() const { return inflight_.empty(); }
    /** Entries still traversing the pipe. */
    size_t size() const { return inflight_.size(); }
    /** The fixed traversal latency in cycles. */
    uint32_t latency() const { return latency_; }

  private:
    struct Entry
    {
        T value;
        Cycle readyAt;
    };

    std::deque<Entry> inflight_;
    uint32_t latency_;
};

} // namespace vortex
