/**
 * @file
 * Small deterministic PRNG (xorshift*) used by workload generators and
 * property tests. Deterministic across platforms, unlike std::default_random.
 */

#pragma once

#include <cstdint>

namespace vortex {

/** xorshift64* generator; deterministic, seedable, fast. */
class Xorshift
{
  public:
    /** Seeded generator; a zero seed is remapped to the default so the
     *  state never sticks at the xorshift fixed point. */
    explicit Xorshift(uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state_(seed ? seed : 0x9E3779B97F4A7C15ull)
    {
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    /** Uniform in [0, bound). */
    uint32_t
    nextBounded(uint32_t bound)
    {
        return bound ? static_cast<uint32_t>(next() % bound) : 0;
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
    }

  private:
    uint64_t state_;
};

} // namespace vortex
