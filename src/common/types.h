/**
 * @file
 * Fundamental scalar types shared across the vortex-sim codebase.
 */

#pragma once

#include <cstdint>

namespace vortex {

/** Machine word of the simulated RV32 architecture. */
using Word = uint32_t;

/** Signed view of a machine word. */
using WordS = int32_t;

/** Double-width word, used by MUL/DIV helpers. */
using DWord = uint64_t;
/** Signed view of a double-width word. */
using DWordS = int64_t;

/** Byte address in the simulated physical address space. */
using Addr = uint32_t;

/** Simulation time expressed in core clock cycles. */
using Cycle = uint64_t;

//
// Dense identifier types (kept distinct for readability, not safety).
//
using WarpId = uint32_t;   ///< wavefront index within a core
using ThreadId = uint32_t; ///< thread lane index within a wavefront
using CoreId = uint32_t;   ///< core index within the device
using RegId = uint32_t;    ///< architectural register index

} // namespace vortex
