/**
 * @file
 * Status/error reporting in the gem5 style: panic() for internal simulator
 * bugs, fatal() for user errors the simulation cannot continue from, and
 * warn()/inform() for non-fatal conditions.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace vortex {

/** Thrown by fatal(): a user-level configuration or input error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Thrown by panic(): an internal invariant violation (a simulator bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

inline void
format_into(std::ostringstream&)
{
}

template <typename T, typename... Rest>
void
format_into(std::ostringstream& os, const T& v, const Rest&... rest)
{
    os << v;
    format_into(os, rest...);
}

template <typename... Args>
std::string
concat(const Args&... args)
{
    std::ostringstream os;
    format_into(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an unrecoverable internal error (simulator bug) and throw.
 * Use when an invariant that should never be violated regardless of user
 * input has been violated.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args&... args)
{
    throw PanicError(detail::concat("panic: ", args...));
}

/**
 * Report an unrecoverable user error (bad configuration, bad program) and
 * throw. The simulation cannot continue but the simulator is not at fault.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args&... args)
{
    throw FatalError(detail::concat("fatal: ", args...));
}

/** Report a suspicious but survivable condition to stderr. */
template <typename... Args>
void
warn(const Args&... args)
{
    std::fputs((detail::concat("warn: ", args...) + "\n").c_str(), stderr);
}

/** Report a normal status message to stderr. */
template <typename... Args>
void
inform(const Args&... args)
{
    std::fputs((detail::concat(args...) + "\n").c_str(), stderr);
}

} // namespace vortex
