/**
 * @file
 * Host-side driver API for the simulated Vortex device.
 *
 * This mirrors the Vortex driver stack of the paper (§5.1): the OPAE/PCIe
 * link is replaced by in-process access to the device-local RAM (DESIGN.md
 * substitution #4), but the driver-visible flow is the same —
 * allocate device memory, copy buffers in, upload the kernel binary, write
 * the kernel-argument mailbox, ring the doorbell (start), poll for
 * completion (readyWait), and copy results out.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "core/processor.h"
#include "isa/assembler.h"
#include "isa/object.h"

namespace vortex::runtime {

/** Fixed device-memory layout (see DESIGN.md §4.6). */
constexpr Addr kKernelArgAddr = 0x00010000; ///< argument mailbox
constexpr Addr kHeapBase = 0x10000000;      ///< device heap
constexpr Addr kHeapEnd = 0xF0000000;
constexpr Addr kStackBase = 0xFEFF0000;     ///< stack tops (grow down)
constexpr uint32_t kStackSizeLog2 = 12;     ///< 4 KiB per hardware thread
constexpr Addr kSmemWindow = 0xFF000000;    ///< core-local scratchpad base
constexpr uint32_t kSmemStride = 0x00010000;///< per-core scratchpad stride

//
// Guest self-check mailbox (see docs/TOOLCHAIN.md "Self-check ABI").
// The top two words of the kernel-argument page are reserved for the
// guest to report its own verdict: a PASS/FAIL magic word at
// kSelfCheckAddr and an optional failure-detail word (first failing
// index, bad value, ...) at kSelfCheckDetailAddr. Device::start()
// zeroes both words so a stale verdict from a previous run can never
// leak into the next one.
//
constexpr Addr kSelfCheckAddr = kKernelArgAddr + 0xFF8;       ///< status
constexpr Addr kSelfCheckDetailAddr = kKernelArgAddr + 0xFFC; ///< detail
constexpr uint32_t kSelfCheckPass = 0x50415353; ///< "PASS" (big-endian)
constexpr uint32_t kSelfCheckFail = 0x4641494C; ///< "FAIL" (big-endian)

/**
 * The memory map of a device built from @p config with @p program
 * loaded, in the static analyzer's terms: the (read-only) code segment,
 * the kernel-argument mailbox, the heap, the per-thread stacks, and one
 * scratchpad window per core.
 */
analysis::MemMap deviceMemMap(const core::ArchConfig& config,
                              const isa::Program& program);

/** AnalyzerOptions describing the machine @p config builds, including
 *  the deviceMemMap() of @p program. */
analysis::AnalyzerOptions analyzerOptions(const core::ArchConfig& config,
                                          const isa::Program& program);

/** The simulated device with its driver interface. */
class Device
{
  public:
    explicit Device(const core::ArchConfig& config);

    //
    // Device memory management (bump allocator; free is a no-op, matching
    // the lightweight OPAE buffer manager).
    //
    Addr memAlloc(size_t size, size_t align = 64);
    void copyToDev(Addr dst, const void* src, size_t size);
    void copyFromDev(void* dst, Addr src, size_t size) const;

    //
    // Kernel upload. `uploadKernel` assembles the native runtime (crt0 +
    // spawn_tasks) followed by the given kernel source; `uploadProgram`
    // loads a pre-assembled binary.
    //
    void uploadKernel(const std::string& kernelAsm);
    void uploadProgram(const isa::Program& program);
    const isa::Program& program() const { return program_; }

    /**
     * Full toolchain path: assemble the native runtime + @p kernelAsm
     * into a relocatable object, serialize and re-read it (so every run
     * exercises the VXOB writer/reader), then load via uploadObject().
     * @p name is the unit name used in assembler diagnostics.
     */
    void uploadKernelObject(const std::string& kernelAsm,
                            const std::string& name = "<kernel>");

    /**
     * Loader: rebase @p obj to this machine's startPC, apply its
     * relocations, map the image into device RAM, and pre-mark the pages
     * of executable sections as code so the decode cache's write-epoch
     * invalidation covers them from the first store on.
     */
    void uploadObject(const isa::ObjectFile& obj);

    /**
     * Route every subsequent uploadKernel() through the object pipeline
     * with @p source instead of the built-in kernel string it was given.
     * This is how `[workload] program = "file.s"` sweep specs reuse the
     * shipped harnesses (argument setup + host-side verification) with a
     * guest program loaded from disk. An empty @p source clears it.
     */
    void setKernelOverride(const std::string& source,
                           const std::string& name);

    /** Write the kernel-argument mailbox. */
    void setKernelArg(const void* data, size_t size);
    template <typename T>
    void
    setKernelArg(const T& args)
    {
        setKernelArg(&args, sizeof(T));
    }

    /**
     * Statically verify the uploaded program against this device's
     * geometry and memory map (see analysis/analysis.h) without
     * executing it. Call after uploadKernel()/uploadProgram().
     */
    analysis::Report verify() const;

    /**
     * The guest's self-reported verdict, read back from the self-check
     * mailbox after a run (see kSelfCheckAddr). A guest that follows
     * the self-check ABI writes kSelfCheckPass or kSelfCheckFail to
     * `status`; anything else means the guest never reached its
     * verdict (crash, early exit, or a program that does not
     * implement the convention).
     */
    struct SelfCheck
    {
        uint32_t status = 0; ///< kSelfCheckPass / kSelfCheckFail / other
        uint32_t detail = 0; ///< guest-defined failure detail word
        bool passed() const { return status == kSelfCheckPass; }
        bool failed() const { return status == kSelfCheckFail; }
    };

    /** Read the self-check mailbox words (valid after readyWait()). */
    SelfCheck readSelfCheck() const;

    /** Reset the device and start every core at the kernel entry.
     *  Also clears the self-check mailbox words. */
    void start();

    /**
     * Poll until the device goes idle. @return true on completion, false
     * on cycle-budget exhaustion.
     */
    bool readyWait(uint64_t max_cycles = 200000000ull);

    /**
     * start() + readyWait(); throws SimError with RunStatus::Timeout when
     * the cycle watchdog expires (a deadlocked or runaway kernel), which
     * the workload layer records as a structured `timeout` outcome
     * instead of aborting the process (docs/ROBUSTNESS.md).
     */
    void runKernel(uint64_t max_cycles = 200000000ull);

    /**
     * Tighten the cycle watchdog for every subsequent runKernel() to
     * @p max_cycles (0 restores the caller-supplied budget). This is how
     * `[faults] watchdog = N` specs bound hang detection without
     * touching every runner's call site.
     */
    void setCycleLimit(uint64_t max_cycles) { cycleLimit_ = max_cycles; }

    core::Processor& processor() { return *processor_; }
    const core::Processor& processor() const { return *processor_; }
    mem::Ram& ram() { return processor_->ram(); }

    Cycle cycles() const { return processor_->cycles(); }
    double ipc() const { return processor_->ipc(); }

  private:
    core::ArchConfig config_;
    std::unique_ptr<core::Processor> processor_;
    isa::Program program_;
    std::string kernelOverride_;     ///< see setKernelOverride()
    std::string kernelOverrideName_;
    Addr heapTop_ = kHeapBase;
    uint64_t cycleLimit_ = 0;        ///< see setCycleLimit()
};

} // namespace vortex::runtime
