/**
 * @file
 * Verified workload runners.
 */

#include "runtime/workloads.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <deque>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/bitmanip.h"
#include "common/log.h"
#include "common/rng.h"
#include "kernels/kernels.h"
#include "runtime/kargs.h"
#include "tex/sampler.h"

namespace vortex::runtime {

namespace {

RunResult
finish(Device& dev, bool ok, const std::string& error = "")
{
    RunResult r;
    r.ok = ok;
    r.cycles = dev.cycles();
    r.threadInstrs = dev.processor().threadInstrs();
    r.ipc = dev.ipc();
    r.error = error;
    return r;
}

std::string
mismatch(const char* what, size_t index, double expected, double actual)
{
    std::ostringstream os;
    os << what << " mismatch at " << index << ": expected " << expected
       << ", got " << actual;
    return os.str();
}

constexpr uint64_t kMaxCycles = 400000000ull;

} // namespace

RunResult
runVecAdd(Device& dev, uint32_t n)
{
    Xorshift rng(42);
    std::vector<int32_t> a(n), b(n), c(n);
    for (uint32_t i = 0; i < n; ++i) {
        a[i] = static_cast<int32_t>(rng.next());
        b[i] = static_cast<int32_t>(rng.next());
    }
    Addr da = dev.memAlloc(n * 4), db = dev.memAlloc(n * 4),
         dc = dev.memAlloc(n * 4);
    dev.copyToDev(da, a.data(), n * 4);
    dev.copyToDev(db, b.data(), n * 4);
    dev.uploadKernel(kernels::vecadd());
    dev.setKernelArg(VecAddArgs{n, da, db, dc});
    dev.runKernel(kMaxCycles);
    dev.copyFromDev(c.data(), dc, n * 4);
    for (uint32_t i = 0; i < n; ++i) {
        // Wrapping add, like the device's 32-bit `add` (and without the
        // signed-overflow UB the naive int sum has under UBSan).
        int32_t want = static_cast<int32_t>(static_cast<uint32_t>(a[i]) +
                                            static_cast<uint32_t>(b[i]));
        if (c[i] != want)
            return finish(dev, false, mismatch("vecadd", i, want, c[i]));
    }
    return finish(dev, true);
}

RunResult
runSaxpy(Device& dev, uint32_t n)
{
    Xorshift rng(43);
    const float alpha = 2.5f;
    std::vector<float> x(n), y(n), out(n);
    for (uint32_t i = 0; i < n; ++i) {
        x[i] = rng.nextFloat() * 10.0f - 5.0f;
        y[i] = rng.nextFloat() * 10.0f - 5.0f;
    }
    Addr dx = dev.memAlloc(n * 4), dy = dev.memAlloc(n * 4);
    dev.copyToDev(dx, x.data(), n * 4);
    dev.copyToDev(dy, y.data(), n * 4);
    dev.uploadKernel(kernels::saxpy());
    dev.setKernelArg(SaxpyArgs{n, alpha, dx, dy});
    dev.runKernel(kMaxCycles);
    dev.copyFromDev(out.data(), dy, n * 4);
    for (uint32_t i = 0; i < n; ++i) {
        float expect = std::fma(alpha, x[i], y[i]);
        if (out[i] != expect)
            return finish(dev, false, mismatch("saxpy", i, expect, out[i]));
    }
    return finish(dev, true);
}

RunResult
runSgemm(Device& dev, uint32_t n)
{
    Xorshift rng(44);
    std::vector<float> a(n * n), b(n * n), c(n * n);
    for (auto& v : a)
        v = rng.nextFloat() - 0.5f;
    for (auto& v : b)
        v = rng.nextFloat() - 0.5f;
    Addr da = dev.memAlloc(n * n * 4), db = dev.memAlloc(n * n * 4),
         dc = dev.memAlloc(n * n * 4);
    dev.copyToDev(da, a.data(), n * n * 4);
    dev.copyToDev(db, b.data(), n * n * 4);
    dev.uploadKernel(kernels::sgemm());
    dev.setKernelArg(SgemmArgs{n, da, db, dc});
    dev.runKernel(kMaxCycles);
    dev.copyFromDev(c.data(), dc, n * n * 4);
    for (uint32_t i = 0; i < n; ++i) {
        for (uint32_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (uint32_t k = 0; k < n; ++k)
                acc = std::fma(a[i * n + k], b[k * n + j], acc);
            if (c[i * n + j] != acc)
                return finish(dev, false,
                              mismatch("sgemm", i * n + j, acc,
                                       c[i * n + j]));
        }
    }
    return finish(dev, true);
}

RunResult
runSfilter(Device& dev, uint32_t width, uint32_t height)
{
    Xorshift rng(45);
    std::vector<float> src(width * height), dst(width * height);
    for (auto& v : src)
        v = rng.nextFloat() * 255.0f;
    Addr ds = dev.memAlloc(src.size() * 4), dd = dev.memAlloc(dst.size() * 4);
    dev.copyToDev(ds, src.data(), src.size() * 4);
    dev.uploadKernel(kernels::sfilter());
    dev.setKernelArg(SfilterArgs{width, height, ds, dd});
    dev.runKernel(kMaxCycles);
    dev.copyFromDev(dst.data(), dd, dst.size() * 4);
    auto clampi = [](int v, int lo, int hi) {
        return std::min(std::max(v, lo), hi);
    };
    for (uint32_t y = 0; y < height; ++y) {
        for (uint32_t x = 0; x < width; ++x) {
            auto at = [&](int xx, int yy) {
                xx = clampi(xx, 0, static_cast<int>(width) - 1);
                yy = clampi(yy, 0, static_cast<int>(height) - 1);
                return src[yy * width + xx];
            };
            // Same association order as the kernel.
            float corners = ((at(x - 1, y - 1) + at(x + 1, y - 1)) +
                             at(x - 1, y + 1)) + at(x + 1, y + 1);
            float edges = ((at(x, y - 1) + at(x - 1, y)) + at(x + 1, y)) +
                          at(x, y + 1);
            float sum = std::fma(edges, 2.0f, corners);
            sum = std::fma(at(x, y), 4.0f, sum);
            float expect = sum * 0.0625f;
            float got = dst[y * width + x];
            if (got != expect)
                return finish(dev, false,
                              mismatch("sfilter", y * width + x, expect,
                                       got));
        }
    }
    return finish(dev, true);
}

RunResult
runNearn(Device& dev, uint32_t n)
{
    Xorshift rng(46);
    const float lat = 30.0f, lng = 50.0f;
    std::vector<float> pts(2 * n), dist(n);
    for (auto& v : pts)
        v = rng.nextFloat() * 100.0f;
    Addr dp = dev.memAlloc(pts.size() * 4), dd = dev.memAlloc(n * 4);
    dev.copyToDev(dp, pts.data(), pts.size() * 4);
    dev.uploadKernel(kernels::nearn());
    dev.setKernelArg(NearnArgs{n, lat, lng, dp, dd});
    dev.runKernel(kMaxCycles);
    dev.copyFromDev(dist.data(), dd, n * 4);
    for (uint32_t i = 0; i < n; ++i) {
        float d0 = pts[2 * i] - lat;
        float d1 = pts[2 * i + 1] - lng;
        float expect = std::sqrt(std::fma(d1, d1, d0 * d0));
        if (dist[i] != expect)
            return finish(dev, false, mismatch("nearn", i, expect, dist[i]));
    }
    return finish(dev, true);
}

RunResult
runGaussian(Device& dev, uint32_t n)
{
    Xorshift rng(47);
    std::vector<float> a(n * n), m(n, 0.0f);
    for (uint32_t i = 0; i < n * n; ++i)
        a[i] = rng.nextFloat() + 0.1f;
    // Diagonal dominance keeps the elimination well conditioned.
    for (uint32_t i = 0; i < n; ++i)
        a[i * n + i] += static_cast<float>(n);
    std::vector<float> ref = a;
    Addr da = dev.memAlloc(a.size() * 4), dm = dev.memAlloc(n * 4);
    dev.copyToDev(da, a.data(), a.size() * 4);
    dev.copyToDev(dm, m.data(), n * 4);
    dev.uploadKernel(kernels::gaussian());
    GaussianArgs args{n, da, 0, dm, 0};
    dev.setKernelArg(args);
    dev.runKernel(kMaxCycles);
    dev.copyFromDev(a.data(), da, a.size() * 4);
    // Host reference with the same fused operations.
    for (uint32_t k = 0; k + 1 < n; ++k) {
        std::vector<float> mult(n, 0.0f);
        for (uint32_t i = k + 1; i < n; ++i)
            mult[i] = ref[i * n + k] / ref[k * n + k];
        for (uint32_t i = k + 1; i < n; ++i) {
            for (uint32_t j = 0; j < n; ++j) {
                ref[i * n + j] =
                    std::fma(-mult[i], ref[k * n + j], ref[i * n + j]);
            }
        }
    }
    for (uint32_t i = 0; i < n * n; ++i) {
        if (a[i] != ref[i])
            return finish(dev, false, mismatch("gaussian", i, ref[i], a[i]));
    }
    return finish(dev, true);
}

RunResult
runBfs(Device& dev, uint32_t num_nodes, uint32_t avg_degree)
{
    Xorshift rng(48);
    // Random connected-ish digraph in CSR form: a backbone chain plus
    // random extra edges, degree capped so the kernel's uniform edge loop
    // stays short.
    const uint32_t max_degree = avg_degree * 2;
    std::vector<std::vector<uint32_t>> adj(num_nodes);
    for (uint32_t i = 1; i < num_nodes; ++i)
        adj[i - 1].push_back(i); // backbone
    for (uint32_t i = 0; i < num_nodes; ++i) {
        uint32_t extra = rng.nextBounded(avg_degree);
        for (uint32_t e = 0; e < extra; ++e) {
            if (adj[i].size() >= max_degree)
                break;
            adj[i].push_back(rng.nextBounded(num_nodes));
        }
    }
    std::vector<uint32_t> row_ptr(num_nodes + 1, 0), col_idx;
    for (uint32_t i = 0; i < num_nodes; ++i) {
        row_ptr[i + 1] = row_ptr[i] + static_cast<uint32_t>(adj[i].size());
        col_idx.insert(col_idx.end(), adj[i].begin(), adj[i].end());
    }
    std::vector<int32_t> levels(num_nodes, -1);
    levels[0] = 0;

    Addr drow = dev.memAlloc(row_ptr.size() * 4);
    Addr dcol = dev.memAlloc(std::max<size_t>(col_idx.size(), 1) * 4);
    Addr dlev = dev.memAlloc(levels.size() * 4);
    Addr dchg = dev.memAlloc(4);
    dev.copyToDev(drow, row_ptr.data(), row_ptr.size() * 4);
    if (!col_idx.empty())
        dev.copyToDev(dcol, col_idx.data(), col_idx.size() * 4);
    dev.copyToDev(dlev, levels.data(), levels.size() * 4);

    dev.uploadKernel(kernels::bfs());
    BfsArgs args{num_nodes, max_degree, drow, dcol, dlev, dchg, 0};
    dev.setKernelArg(args);
    dev.runKernel(kMaxCycles);
    std::vector<int32_t> out(num_nodes);
    dev.copyFromDev(out.data(), dlev, out.size() * 4);

    // Host BFS reference.
    std::vector<int32_t> ref(num_nodes, -1);
    ref[0] = 0;
    std::deque<uint32_t> frontier{0};
    while (!frontier.empty()) {
        uint32_t u = frontier.front();
        frontier.pop_front();
        for (uint32_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
            uint32_t v = col_idx[e];
            if (ref[v] == -1) {
                ref[v] = ref[u] + 1;
                frontier.push_back(v);
            }
        }
    }
    for (uint32_t i = 0; i < num_nodes; ++i) {
        if (out[i] != ref[i])
            return finish(dev, false, mismatch("bfs", i, ref[i], out[i]));
    }
    return finish(dev, true);
}

RunResult
runRodinia(Device& dev, const std::string& name, uint32_t scale)
{
    if (name == "vecadd")
        return runVecAdd(dev, 2048 * scale);
    if (name == "saxpy")
        return runSaxpy(dev, 2048 * scale);
    if (name == "sgemm")
        return runSgemm(dev, 24 * scale);
    if (name == "sfilter")
        return runSfilter(dev, 48 * scale, 32 * scale);
    if (name == "nearn")
        return runNearn(dev, 1024 * scale);
    if (name == "gaussian")
        return runGaussian(dev, 16 * scale);
    if (name == "bfs")
        return runBfs(dev, 512 * scale, 4);
    fatal("unknown Rodinia kernel '", name, "'");
}

bool
isComputeBound(const std::string& name)
{
    return name == "sgemm" || name == "vecadd" || name == "sfilter";
}

RunResult
runTexture(Device& dev, TexFilterMode mode, bool hardware, uint32_t size)
{
    if (!isPow2(size))
        fatal("texture benchmark size must be a power of two");
    Xorshift rng(49);
    const uint32_t log2sz = log2Floor(size);
    const uint32_t lods = mode == TexFilterMode::Trilinear ? 3 : 1;
    const float lod = mode == TexFilterMode::Trilinear ? 0.5f : 0.0f;

    // Build the contiguous RGBA8 mip chain.
    size_t chain_bytes = 0;
    for (uint32_t l = 0; l < lods; ++l)
        chain_bytes += static_cast<size_t>(std::max(1u, size >> l)) *
                       std::max(1u, size >> l) * 4;
    std::vector<uint8_t> chain(chain_bytes);
    for (auto& b : chain)
        b = static_cast<uint8_t>(rng.next());

    Addr dsrc = dev.memAlloc(chain.size(), 64);
    Addr ddst = dev.memAlloc(static_cast<size_t>(size) * size * 4, 64);
    dev.copyToDev(dsrc, chain.data(), chain.size());

    const char* kernel = nullptr;
    switch (mode) {
      case TexFilterMode::Point:
        kernel = hardware ? kernels::texPointHw() : kernels::texPointSw();
        break;
      case TexFilterMode::Bilinear:
        kernel = hardware ? kernels::texBilinearHw()
                          : kernels::texBilinearSw();
        break;
      case TexFilterMode::Trilinear:
        kernel = hardware ? kernels::texTrilinearHw()
                          : kernels::texTrilinearSw();
        break;
    }
    dev.uploadKernel(kernel);

    TexKernelArgs args{};
    args.dstWidth = size;
    args.dstHeight = size;
    args.dst = ddst;
    args.srcAddr = dsrc;
    args.srcWidthLog2 = log2sz;
    args.srcHeightLog2 = log2sz;
    args.format = static_cast<uint32_t>(tex::Format::RGBA8);
    args.filter = static_cast<uint32_t>(
        mode == TexFilterMode::Point ? tex::Filter::Point
                                     : tex::Filter::Bilinear);
    args.wrap = static_cast<uint32_t>(tex::Wrap::Repeat) |
                (static_cast<uint32_t>(tex::Wrap::Repeat) << 2);
    args.lods = lods;
    args.lod = lod;
    args.deltaX = 1.0f / static_cast<float>(size);
    args.deltaY = 1.0f / static_cast<float>(size);
    dev.setKernelArg(args);
    dev.runKernel(kMaxCycles);

    // Verify against the host functional sampler.
    tex::SamplerState st;
    st.addr = dsrc;
    st.widthLog2 = log2sz;
    st.heightLog2 = log2sz;
    st.format = tex::Format::RGBA8;
    st.wrapU = st.wrapV = tex::Wrap::Repeat;
    st.filter = mode == TexFilterMode::Point ? tex::Filter::Point
                                             : tex::Filter::Bilinear;
    st.numLods = lods;

    const int tolerance = hardware ? 0 : 2;
    const mem::Ram& ram = dev.processor().ram();
    for (uint32_t y = 0; y < size; ++y) {
        for (uint32_t x = 0; x < size; ++x) {
            float u = (static_cast<float>(x) + 0.5f) * args.deltaX;
            float v = (static_cast<float>(y) + 0.5f) * args.deltaY;
            tex::Color expect;
            switch (mode) {
              case TexFilterMode::Point:
                expect = tex::samplePoint(ram, st, u, v, 0).color;
                break;
              case TexFilterMode::Bilinear:
                expect = tex::sampleBilinear(ram, st, u, v, 0).color;
                break;
              case TexFilterMode::Trilinear:
                expect = tex::sampleTrilinear(ram, st, u, v, lod).color;
                break;
            }
            uint32_t got = ram.read32(ddst + (y * size + x) * 4);
            tex::Color g = tex::Color::unpackRgba8(got);
            auto close = [&](uint8_t a, uint8_t b) {
                return std::abs(int(a) - int(b)) <= tolerance;
            };
            if (!(close(g.r, expect.r) && close(g.g, expect.g) &&
                  close(g.b, expect.b) && close(g.a, expect.a))) {
                return finish(dev, false,
                              mismatch("texture", y * size + x,
                                       expect.pack(), got));
            }
        }
    }
    return finish(dev, true);
}

RunResult
runSelfCheck(Device& dev)
{
    // The empty source routes through the installed kernel override
    // (Device::uploadKernel); the guest program is the whole workload.
    dev.uploadKernel("");
    dev.runKernel(kMaxCycles);
    Device::SelfCheck check = dev.readSelfCheck();
    if (check.passed())
        return finish(dev, true);
    std::ostringstream os;
    if (check.failed())
        os << "guest self-check FAILed (detail word 0x" << std::hex
           << check.detail << ")";
    else
        os << "guest never wrote a self-check verdict (status 0x"
           << std::hex << check.status << ")";
    RunResult r = finish(dev, false, os.str());
    // The guest *detected* the problem (or never reached its verdict) —
    // a structured selfcheck_fail outcome, distinct from a silent
    // memcmp mismatch which stays status Ok (docs/ROBUSTNESS.md).
    r.status = RunStatus::SelfcheckFail;
    return r;
}

RunResult
runMemcmp(Device& dev, Addr addr, uint32_t len, uint64_t expectedFnv)
{
    dev.uploadKernel("");
    dev.runKernel(kMaxCycles);
    std::vector<uint8_t> bytes(len);
    dev.copyFromDev(bytes.data(), addr, len);
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    if (h == expectedFnv)
        return finish(dev, true);
    std::ostringstream os;
    os << "memcmp check: FNV-1a of " << std::dec << len
       << " bytes at 0x" << std::hex << addr << " is "
       << std::setfill('0') << std::setw(16) << h << ", expected "
       << std::setw(16) << expectedFnv;
    return finish(dev, false, os.str());
}

} // namespace vortex::runtime
