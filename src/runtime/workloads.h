/**
 * @file
 * Workload generators and verified runners for the paper's benchmarks.
 * Each runner builds a deterministic input, uploads the kernel through the
 * driver, executes it, checks the device results against a host C++
 * reference, and returns the performance counters the evaluation figures
 * plot. Shared by the test suite, the bench harnesses, and the examples.
 */

#pragma once

#include <cstdint>
#include <string>

#include "common/outcome.h"
#include "runtime/device.h"

namespace vortex::runtime {

/** Outcome of one verified kernel execution. */
struct RunResult
{
    bool ok = false;        ///< device results matched the host reference
    /** How the run ended (docs/ROBUSTNESS.md). Ok means the simulation
     *  completed — `ok` may still be false on a verification mismatch
     *  (a silent data corruption under fault injection). */
    RunStatus status = RunStatus::Ok;
    uint64_t cycles = 0;
    uint64_t threadInstrs = 0;
    double ipc = 0.0;       ///< thread-instructions per cycle (paper metric)
    std::string error;      ///< first mismatch description when !ok
};

//
// Rodinia subset (§6.1).
//
RunResult runVecAdd(Device& dev, uint32_t n);
RunResult runSaxpy(Device& dev, uint32_t n);
RunResult runSgemm(Device& dev, uint32_t n);          ///< n x n matrices
RunResult runSfilter(Device& dev, uint32_t width, uint32_t height);
RunResult runNearn(Device& dev, uint32_t n);
RunResult runGaussian(Device& dev, uint32_t n);       ///< n x n elimination
RunResult runBfs(Device& dev, uint32_t numNodes, uint32_t avgDegree);

/** Dispatch one of the seven Rodinia kernels by name with a default
 *  problem size scaled by @p scale (1 = test-sized). */
RunResult runRodinia(Device& dev, const std::string& name,
                     uint32_t scale = 1);

/** The paper's benchmark grouping (§6.1). */
bool isComputeBound(const std::string& name);

//
// Texture benchmarks (§6.4).
//
enum class TexFilterMode { Point, Bilinear, Trilinear };

/**
 * Render a size x size texture to an equal render target with the given
 * filtering, in hardware (`tex` instruction) or software. Device results
 * are verified against the host functional sampler (bit-exact for HW,
 * +-2/channel for SW float-path differences).
 */
RunResult runTexture(Device& dev, TexFilterMode mode, bool hardware,
                     uint32_t size);

//
// Harness-free runners (`[workload] check = ...` specs). Both expect a
// kernel override to be installed (Device::setKernelOverride) — the
// guest program IS the workload; there is no per-workload C++ setup.
//

/**
 * Run the installed kernel override and judge it by the guest's own
 * verdict in the self-check mailbox (docs/TOOLCHAIN.md "Self-check
 * ABI"): ok iff the guest wrote kSelfCheckPass. A FAIL verdict reports
 * the guest's detail word; any other status means the guest never
 * reached its verdict and is reported as such.
 */
RunResult runSelfCheck(Device& dev);

/**
 * Run the installed kernel override, then read @p len bytes of device
 * memory at @p addr and compare their FNV-1a 64 hash against
 * @p expectedFnv (the `check = "memcmp:ADDR:LEN:FNV"` spec form).
 */
RunResult runMemcmp(Device& dev, Addr addr, uint32_t len,
                    uint64_t expectedFnv);

} // namespace vortex::runtime
