/**
 * @file
 * Kernel-argument structures shared between host code and the assembly
 * kernels. The host writes one of these (field-by-field, little-endian,
 * 4-byte fields only) into the argument mailbox at runtime::kKernelArgAddr;
 * the kernels read the fields by byte offset, so the layouts here are ABI:
 * do not reorder fields.
 */

#pragma once

#include <cstdint>

#include "common/types.h"

namespace vortex::runtime {

/** vecadd: c[i] = a[i] + b[i] over int32. */
struct VecAddArgs
{
    uint32_t n;   // +0
    Addr a;       // +4
    Addr b;       // +8
    Addr c;       // +12
};

/** saxpy: y[i] = a * x[i] + y[i] over float. */
struct SaxpyArgs
{
    uint32_t n;   // +0
    float a;      // +4
    Addr x;       // +8
    Addr y;       // +12
};

/** sgemm: C = A x B, all n x n row-major float; one task per C cell. */
struct SgemmArgs
{
    uint32_t n;   // +0
    Addr a;       // +4
    Addr b;       // +8
    Addr c;       // +12
};

/** sfilter: 3x3 binomial blur over a float image; one task per pixel. */
struct SfilterArgs
{
    uint32_t width;  // +0
    uint32_t height; // +4
    Addr src;        // +8
    Addr dst;        // +12
};

/** nearn: dist[i] = euclidean distance from (lat,lng) to points[i]. */
struct NearnArgs
{
    uint32_t n;   // +0
    float lat;    // +4
    float lng;    // +8
    Addr points;  // +12  (n records of {float lat, float lng})
    Addr dist;    // +16
};

/** gaussian: in-place elimination of the n x n float matrix A using the
 *  multiplier vector m; the kernel's main iterates k with global barriers
 *  and writes the current k into this struct. */
struct GaussianArgs
{
    uint32_t n;   // +0
    Addr a;       // +4
    Addr b;       // +8   (unused by the device kernel; kept for layout)
    Addr m;       // +12
    uint32_t k;   // +16  (device-written)
};

/** bfs: frontier BFS over CSR adjacency; levels[] starts at -1 except the
 *  source (level 0). The kernel's main iterates levels with global
 *  barriers, writing curLevel and polling the changed flag. */
struct BfsArgs
{
    uint32_t numNodes;  // +0
    uint32_t maxDegree; // +4
    Addr rowPtr;        // +8   (numNodes+1 u32)
    Addr colIdx;        // +12
    Addr levels;        // +16  (int32)
    Addr changed;       // +20  (u32 flag cell)
    uint32_t curLevel;  // +24  (device-written)
};

/** Texture benchmarks: render the source texture into an equally sized
 *  RGBA8 destination (paper §6.4). */
struct TexKernelArgs
{
    uint32_t dstWidth;     // +0
    uint32_t dstHeight;    // +4
    Addr dst;              // +8
    Addr srcAddr;          // +12
    uint32_t srcWidthLog2; // +16
    uint32_t srcHeightLog2;// +20
    uint32_t format;       // +24  (tex::Format)
    uint32_t filter;       // +28  (tex::Filter)
    uint32_t wrap;         // +32  (u | v<<2)
    uint32_t lods;         // +36
    float lod;             // +40  (trilinear level-of-detail)
    float deltaX;          // +44  (1.0f / dstWidth, as Fig. 13)
    float deltaY;          // +48
};

} // namespace vortex::runtime
