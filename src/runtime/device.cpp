/**
 * @file
 * Simulated driver implementation.
 */

#include "runtime/device.h"

#include "common/bitmanip.h"
#include "common/log.h"
#include "kernels/kernels.h"

namespace vortex::runtime {

Device::Device(const core::ArchConfig& config) : config_(config)
{
    processor_ = std::make_unique<core::Processor>(config);
}

Addr
Device::memAlloc(size_t size, size_t align)
{
    if (!isPow2(align))
        fatal("memAlloc: alignment must be a power of two");
    Addr base = static_cast<Addr>(alignUp(heapTop_, align));
    if (base + size > kHeapEnd)
        fatal("memAlloc: device heap exhausted");
    heapTop_ = base + static_cast<Addr>(size);
    return base;
}

void
Device::copyToDev(Addr dst, const void* src, size_t size)
{
    processor_->ram().writeBlock(dst, src, size);
}

void
Device::copyFromDev(void* dst, Addr src, size_t size) const
{
    processor_->ram().readBlock(src, dst, size);
}

void
Device::uploadKernel(const std::string& kernel_asm)
{
    isa::Assembler assembler(config_.startPC);
    uploadProgram(assembler.assembleAll(
        {kernels::runtimeSource(), kernel_asm}));
}

void
Device::uploadProgram(const isa::Program& program)
{
    program_ = program;
    processor_->ram().writeBlock(program.base, program.image.data(),
                                 program.image.size());
}

void
Device::setKernelArg(const void* data, size_t size)
{
    processor_->ram().writeBlock(kKernelArgAddr, data, size);
}

void
Device::start()
{
    processor_->start();
}

bool
Device::readyWait(uint64_t max_cycles)
{
    return processor_->run(max_cycles);
}

void
Device::runKernel(uint64_t max_cycles)
{
    start();
    if (!readyWait(max_cycles))
        fatal("kernel did not complete within ", max_cycles,
              " cycles (deadlock or runaway kernel)");
}

} // namespace vortex::runtime
