/**
 * @file
 * Simulated driver implementation.
 */

#include "runtime/device.h"

#include "common/bitmanip.h"
#include "common/log.h"
#include "common/outcome.h"
#include "kernels/kernels.h"

namespace vortex::runtime {

analysis::MemMap
deviceMemMap(const core::ArchConfig& config, const isa::Program& program)
{
    analysis::MemMap map;
    map.regions.push_back({"code", program.base,
                           static_cast<uint64_t>(program.image.size()),
                           /*writable=*/false});
    map.regions.push_back({"kargs", kKernelArgAddr, 0x1000, true});
    map.regions.push_back(
        {"heap", kHeapBase,
         static_cast<uint64_t>(kHeapEnd) - kHeapBase, true});
    uint64_t stackBytes = static_cast<uint64_t>(config.numCores) *
                          config.numWarps * config.numThreads
                          << kStackSizeLog2;
    map.regions.push_back(
        {"stack", static_cast<Addr>(kStackBase - stackBytes),
         stackBytes, true});
    for (uint32_t core = 0; core < config.numCores; ++core)
        map.regions.push_back(
            {"smem(core " + std::to_string(core) + ")",
             kSmemWindow + core * kSmemStride, config.smemSize, true});
    return map;
}

analysis::AnalyzerOptions
analyzerOptions(const core::ArchConfig& config,
                const isa::Program& program)
{
    analysis::AnalyzerOptions opts;
    opts.numThreads = config.numThreads;
    opts.numWarps = config.numWarps;
    opts.numCores = config.numCores;
    opts.memMap = deviceMemMap(config, program);
    return opts;
}

Device::Device(const core::ArchConfig& config) : config_(config)
{
    processor_ = std::make_unique<core::Processor>(config);
}

analysis::Report
Device::verify() const
{
    if (program_.image.empty())
        fatal("Device::verify: no program uploaded");
    return analysis::analyze(program_, analyzerOptions(config_, program_));
}

Addr
Device::memAlloc(size_t size, size_t align)
{
    if (!isPow2(align))
        fatal("memAlloc: alignment must be a power of two");
    Addr base = static_cast<Addr>(alignUp(heapTop_, align));
    if (base + size > kHeapEnd)
        fatal("memAlloc: device heap exhausted");
    heapTop_ = base + static_cast<Addr>(size);
    return base;
}

void
Device::copyToDev(Addr dst, const void* src, size_t size)
{
    processor_->ram().writeBlock(dst, src, size);
}

void
Device::copyFromDev(void* dst, Addr src, size_t size) const
{
    processor_->ram().readBlock(src, dst, size);
}

void
Device::uploadKernel(const std::string& kernel_asm)
{
    if (!kernelOverride_.empty()) {
        uploadKernelObject(kernelOverride_, kernelOverrideName_);
        return;
    }
    isa::Assembler assembler(config_.startPC);
    uploadProgram(assembler.assembleUnits(
        {{"<runtime>", kernels::runtimeSource()},
         {"<kernel>", kernel_asm}}));
}

void
Device::setKernelOverride(const std::string& source,
                          const std::string& name)
{
    kernelOverride_ = source;
    kernelOverrideName_ = name;
}

void
Device::uploadKernelObject(const std::string& kernel_asm,
                           const std::string& name)
{
    isa::Assembler assembler(config_.startPC);
    isa::ObjectFile obj = assembler.assembleObject(
        {{"<runtime>", kernels::runtimeSource()}, {name, kernel_asm}});
    // Round-trip through the serialized format so every load from this
    // path also exercises the writer/reader pair.
    std::vector<uint8_t> bytes = isa::writeObject(obj);
    uploadObject(isa::readObject(bytes.data(), bytes.size(), name));
}

void
Device::uploadObject(const isa::ObjectFile& obj)
{
    isa::Program p = obj.toProgram(config_.startPC);
    if (p.entry != config_.startPC)
        fatal("object entry 0x", std::hex, p.entry,
              " does not match the machine start PC 0x", config_.startPC);
    mem::Ram& ram = processor_->ram();
    ram.writeBlock(p.base, p.image.data(), p.image.size());
    for (const isa::ObjSection& s : obj.sections) {
        if (!s.exec || s.size == 0)
            continue;
        Addr first = p.base + s.offset;
        Addr last = first + s.size - 1;
        for (Addr page = first >> mem::Ram::kPageBits;
             page <= (last >> mem::Ram::kPageBits); ++page)
            ram.markCodePage(page << mem::Ram::kPageBits);
    }
    program_ = std::move(p);
}

void
Device::uploadProgram(const isa::Program& program)
{
    program_ = program;
    processor_->ram().writeBlock(program.base, program.image.data(),
                                 program.image.size());
}

void
Device::setKernelArg(const void* data, size_t size)
{
    processor_->ram().writeBlock(kKernelArgAddr, data, size);
}

Device::SelfCheck
Device::readSelfCheck() const
{
    SelfCheck check;
    processor_->ram().readBlock(kSelfCheckAddr, &check.status,
                                sizeof(check.status));
    processor_->ram().readBlock(kSelfCheckDetailAddr, &check.detail,
                                sizeof(check.detail));
    return check;
}

void
Device::start()
{
    // Clear the self-check mailbox so a stale PASS from a previous run
    // can never vouch for this one.
    const uint32_t zero = 0;
    processor_->ram().writeBlock(kSelfCheckAddr, &zero, sizeof(zero));
    processor_->ram().writeBlock(kSelfCheckDetailAddr, &zero,
                                 sizeof(zero));
    processor_->start();
}

bool
Device::readyWait(uint64_t max_cycles)
{
    return processor_->run(max_cycles);
}

void
Device::runKernel(uint64_t max_cycles)
{
    uint64_t budget = max_cycles;
    if (cycleLimit_ && cycleLimit_ < budget)
        budget = cycleLimit_;
    start();
    if (!readyWait(budget))
        trap(RunStatus::Timeout, "kernel did not complete within ", budget,
             " cycles (deadlock or runaway kernel)");
}

} // namespace vortex::runtime
