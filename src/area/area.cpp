/**
 * @file
 * Calibrated FPGA area/frequency model. Coefficient provenance: linear
 * least squares over the paper's Table 3 / Table 4 / Table 5 rows (see the
 * fit residuals in EXPERIMENTS.md; all within ~2%).
 */

#include "area/area.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace vortex::area {

namespace {

/** basis {1, warps, threads, warps*threads} fits for Table 3. */
constexpr double kLutCoef[4] = {1495.0, 952.115, 4216.885, -41.812};
constexpr double kRegCoef[4] = {5629.0, 753.115, 5976.385, 7.125};
constexpr double kBramCoef[4] = {16.0, -0.192, 26.692, 0.563};
constexpr double kFmaxCoef[4] = {257.0, -4.038, -4.462, 0.625};

double
eval(const double (&c)[4], double w, double t)
{
    return c[0] + c[1] * w + c[2] * t + c[3] * w * t;
}

/** basis {1, cores} fits for Table 4 (Arria 10 rows). */
constexpr double kAlmPctCoef[2] = {10.2083, 4.8051};
constexpr double kRegsKCoef[2] = {54.2083, 29.8051};
constexpr double kBramPctCoef[2] = {5.4167, 4.8683};
constexpr double kDspPctCoef[2] = {-0.2083, 2.3884};
/** fmax decays with log2(cores): {234.4, -7.7}. */
constexpr double kFmaxMcCoef[2] = {234.4, -7.7};

/** Exact quadratic interpolants through Table 5's three port points. */
double
cacheLut(double p)
{
    return 9720.0 + 1053.0 * p - 26.0 * p * p;
}

double
cacheReg(double p)
{
    return 12977.33 + 185.0 * p + 75.67 * p * p;
}

double
cacheFmax(double p)
{
    return 254.0 - p * p / 3.0 - 2.0 * p / 3.0; // 253/250/244 at p=1/2/4
}

} // namespace

CoreArea
coreArea(uint32_t warps, uint32_t threads)
{
    if (warps == 0 || threads == 0)
        fatal("coreArea: zero geometry");
    CoreArea a;
    a.luts = eval(kLutCoef, warps, threads);
    a.regs = eval(kRegCoef, warps, threads);
    a.brams = eval(kBramCoef, warps, threads);
    a.fmaxMhz = eval(kFmaxCoef, warps, threads);
    return a;
}

DeviceCapacity
deviceCapacity(Fpga device)
{
    switch (device) {
      case Fpga::Arria10:
        // Arria 10 GX 1150: 427,200 ALMs, 2,713 M20K, 1,518 DSPs.
        return {427200.0, 2713.0, 1518.0};
      case Fpga::Stratix10:
        // Stratix 10 GX 2800: 933,120 ALMs, 11,721 M20K, 5,760 DSPs.
        return {933120.0, 11721.0, 5760.0};
    }
    fatal("unknown device");
}

DeviceArea
deviceArea(uint32_t cores, Fpga device)
{
    if (cores == 0)
        fatal("deviceArea: zero cores");
    DeviceArea a;
    const double c = cores;
    // The Table 4 percentages are calibrated on the Arria 10; the
    // Stratix 10 row is derived by rescaling with the device capacities.
    double alm_pct_a10 = kAlmPctCoef[0] + kAlmPctCoef[1] * c;
    double bram_pct_a10 = kBramPctCoef[0] + kBramPctCoef[1] * c;
    double dsp_pct_a10 = std::max(0.0, kDspPctCoef[0] + kDspPctCoef[1] * c);
    a.regsK = kRegsKCoef[0] + kRegsKCoef[1] * c;
    if (device == Fpga::Arria10) {
        a.almPercent = alm_pct_a10;
        a.bramPercent = bram_pct_a10;
        a.dspPercent = dsp_pct_a10;
    } else {
        DeviceCapacity a10 = deviceCapacity(Fpga::Arria10);
        DeviceCapacity s10 = deviceCapacity(Fpga::Stratix10);
        a.almPercent = alm_pct_a10 * a10.alms / s10.alms;
        a.bramPercent = bram_pct_a10 * a10.brams / s10.brams;
        a.dspPercent = dsp_pct_a10 * a10.dsps / s10.dsps;
    }
    a.fmaxMhz = kFmaxMcCoef[0] + kFmaxMcCoef[1] * std::log2(c);
    return a;
}

CacheArea
cacheArea(uint32_t banks, uint32_t ports, uint32_t size_bytes)
{
    if (banks == 0 || ports == 0)
        fatal("cacheArea: zero geometry");
    CacheArea a;
    const double p = ports;
    // Calibrated at 4 banks / 16 KiB; logic scales with bank count, BRAM
    // with capacity (one M20K per ~2.5 Kbit of data+tag in the reference
    // build: 72 blocks for 16 KiB across 4 banks).
    const double bank_scale = static_cast<double>(banks) / 4.0;
    a.luts = cacheLut(p) * bank_scale;
    a.regs = cacheReg(p) * bank_scale;
    a.brams = 72.0 * (static_cast<double>(size_bytes) / 16384.0);
    a.fmaxMhz = cacheFmax(p) - 2.0 * std::log2(bank_scale * 2.0) + 2.0;
    return a;
}

std::vector<AreaSlice>
areaDistribution()
{
    // Figure 15 is published as a pie chart without numeric labels; these
    // fractions are read off the figure under the paper's stated
    // constraint that texture units and caches dominate at 8 cores and
    // that the FPU is comparatively small because FMA maps to DSPs.
    return {
        {"texture units", 0.27},
        {"caches (L1+smem)", 0.24},
        {"GPR banks", 0.12},
        {"ALU datapath", 0.09},
        {"wavefront scheduler + IPDOM", 0.08},
        {"LSU", 0.07},
        {"FPU glue (DSP-mapped)", 0.06},
        {"command processor (AFU)", 0.04},
        {"interconnect + misc", 0.03},
    };
}

} // namespace vortex::area
