/**
 * @file
 * FPGA resource & frequency model (DESIGN.md substitution #1).
 *
 * FPGA synthesis (Quartus on Arria 10 / Stratix 10) is not available in
 * this environment, so the synthesis experiments of the paper (Tables 3, 4
 * and 5, Figure 15) are reproduced with an analytic model whose
 * coefficients are least-squares calibrated against the paper's own
 * published numbers. The model preserves the relative trends the paper
 * argues from:
 *   - threads cost more than wavefronts (Table 3: datapath width vs.
 *     multiplexed state);
 *   - BRAM scales with wavefronts x threads (GPR tables);
 *   - multi-core area scales linearly while fmax erodes slowly (Table 4);
 *   - virtual ports add ~9% (2-port) and ~25% (4-port) cache logic at
 *     constant BRAM (Table 5).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vortex::area {

/** Target FPGA device. */
enum class Fpga
{
    Arria10,
    Stratix10,
};

/** Per-core synthesis estimate (Table 3 axes). */
struct CoreArea
{
    double luts;
    double regs;
    double brams;
    double fmaxMhz;
};

/** Whole-device synthesis estimate (Table 4 axes). */
struct DeviceArea
{
    double almPercent;
    double regsK; ///< thousands of registers
    double bramPercent;
    double dspPercent;
    double fmaxMhz;
};

/** Cache synthesis estimate (Table 5 axes). */
struct CacheArea
{
    double luts;
    double regs;
    double brams;
    double fmaxMhz;
};

/** One slice of the Figure 15 area-distribution pie. */
struct AreaSlice
{
    std::string component;
    double fraction; ///< of total core logic area
};

/** Table 3 model: one core with @p warps wavefronts x @p threads threads. */
CoreArea coreArea(uint32_t warps, uint32_t threads);

/** Table 4 model: @p cores baseline (4W-4T) cores on @p device. */
DeviceArea deviceArea(uint32_t cores, Fpga device);

/** Table 5 model: a data cache with @p banks banks, @p ports virtual ports
 *  per bank, and @p sizeBytes capacity. */
CacheArea cacheArea(uint32_t banks, uint32_t ports, uint32_t sizeBytes);

/** Figure 15 model: per-component area fractions of the 8-core build. */
std::vector<AreaSlice> areaDistribution();

/** Device capacities used to convert absolute estimates to percentages. */
struct DeviceCapacity
{
    double alms;
    double brams;
    double dsps;
};
DeviceCapacity deviceCapacity(Fpga device);

} // namespace vortex::area
