/**
 * @file
 * Differential fuzzing of the guest toolchain and the simulator: a seeded
 * random generator of well-formed guest programs (balanced split/join,
 * bounded loops, in-bounds memory traffic) plus a differential oracle
 * that assembles each program through the full object pipeline
 * (assemble -> VXOB write/read -> load/relocate), verifies it with the
 * static analyzer, and runs it on both host tick backends. Any
 * divergence in cycles, retired thread instructions, or scratch-memory
 * contents between the serial and parallel backends fails the seed —
 * the backends are documented bit-identical (core/tick_engine.h).
 *
 * Everything here is deterministic: the generator draws from Xorshift
 * only, and the guest programs index scratch memory through a
 * power-of-two mask so every access stays in bounds regardless of the
 * register soup feeding it.
 *
 * Generated programs are data-race-free across tasks by construction —
 * the lower half of the scratch buffer is read-only to the guest and
 * every store targets the storing task's own private slot in the upper
 * half. That is the scope of the backends' bit-identity contract:
 * cross-core *timing* interactions are staged and committed in core
 * order (core/tick_engine.h), but functional stores land in RAM
 * immediately during the tick phase, so a guest in which two cores race
 * on the same word has no deterministic winner on the parallel backend
 * (exactly like real hardware).
 */

#pragma once

#include <cstdint>
#include <string>

#include "core/config.h"

namespace vortex::fuzz {

/** Knobs of the random guest-program generator. The scratch buffer is
 *  split: words [0, scratchWords/2) are read-only to the guest, and each
 *  spawn round owns scratchWords/4 private store slots in the upper
 *  half, one per task id — so loads and stores can never race across
 *  tasks. maxTasks is clamped to scratchWords/4 (unique slot per id). */
struct GenOptions
{
    uint32_t maxBodyOps = 24;   ///< random body ops per task function
    uint32_t scratchWords = 256;///< guest scratch buffer (power of two)
    uint32_t maxTasks = 64;     ///< spawn_tasks count drawn from [1, max]
};

/** One generated guest program and the harness values it expects. */
struct GeneratedKernel
{
    std::string source;   ///< assembly text (main + task functions)
    uint32_t numTasks = 0;///< written to the kargs mailbox, word 0
    uint32_t scratchWords = 0; ///< size of the scratch buffer, word 1
};

/**
 * Deterministic random guest program for @p seed. The program defines
 * `main`, spawns 1-2 rounds of tasks, and touches only the scratch
 * buffer whose address the harness passes in the kargs mailbox plus a
 * read-only `.rodata` table baked into the program image. Task bodies
 * draw from balanced split/join blocks, uniformly-bounded loops (with
 * optional nesting), calls to shared barrier-free leaf helpers, rodata
 * table loads (half statically resolvable, half dynamically indexed),
 * and an ALU/FP/memory mix spanning RV32IM, sub-word accesses, and the
 * F extension.
 */
GeneratedKernel generateKernel(uint64_t seed, const GenOptions& opts = {});

/** Outcome of one differential run. */
struct FuzzResult
{
    bool ok = false;
    std::string detail; ///< failure description; empty when ok
    std::string source; ///< the generated program, for reproduction
    uint64_t cycles = 0;       ///< serial-backend cycle count
    uint64_t threadInstrs = 0; ///< serial-backend retired thread instrs
};

/** The small wide machine fuzzing runs on: 2 cores x 2 wavefronts x
 *  4 threads — enough geometry to exercise wspawn, divergence, and the
 *  cross-core commit phase while staying fast per seed. */
core::ArchConfig fuzzConfig();

/**
 * Generate the program for @p seed, push it through the object pipeline
 * onto a Device built from @p base, require a clean static-analysis
 * report, then run it to completion on the serial backend and again on
 * the parallel backend (2 tick threads) and compare cycles, retired
 * thread instructions, and the full scratch buffer byte-for-byte.
 */
FuzzResult runDifferential(uint64_t seed, const core::ArchConfig& base,
                           const GenOptions& opts = {});

} // namespace vortex::fuzz
