/**
 * @file
 * Corpus-coverage metric for the differential fuzzer: which InstrKinds,
 * decode paths (RISC-V major opcodes), and static-analyzer checks a
 * window of generated seeds exercises. The metric is a pure function of
 * the seed window and the generator options — no simulation runs — so
 * CI can pin its JSON byte-for-byte and fail when a generator change
 * silently narrows what the corpus covers.
 */

#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "fuzz/fuzz.h"

namespace vortex::fuzz {

/** What a corpus of generated programs exercises (sorted string sets so
 *  the JSON serialization is deterministic). */
struct CoverageReport
{
    uint64_t startSeed = 0; ///< first seed of the measured window
    uint32_t seeds = 0;     ///< window length

    /** Mnemonics of every InstrKind decoded from the executable
     *  sections of the assembled programs (runtime + generated code). */
    std::set<std::string> instrKinds;

    /** Decoder dispatch paths taken, named by RISC-V major opcode
     *  ("OP", "OP-IMM", "LOAD", "VORTEX", ...). */
    std::set<std::string> decodePaths;

    /** Union of analysis::Report::exercisedChecks over the corpus: the
     *  analyzer decision points the programs actually reached. */
    std::set<std::string> analyzerChecks;
};

/**
 * Assemble (through the object pipeline) and statically analyze the
 * generated program of every seed in [startSeed, startSeed + count) on
 * the fuzzConfig() machine, and aggregate what the corpus exercises.
 * Fatal on a program the assembler rejects (a generator bug).
 */
CoverageReport measureCoverage(uint64_t startSeed, uint32_t count,
                               const GenOptions& opts = {});

/** Deterministic JSON serialization of @p report (sorted arrays, stable
 *  field order, trailing newline). */
std::string coverageJson(const CoverageReport& report);

/**
 * Parse a JSON document produced by coverageJson(). Only the shape that
 * serializer emits is accepted; fatal, naming @p what, on anything
 * else.
 */
CoverageReport parseCoverageJson(const std::string& text,
                                 const std::string& what);

/**
 * Compare @p measured against a pinned @p baseline: every baseline
 * instrKind, decodePath, and analyzerCheck must still be covered.
 * @return a human-readable description of every regression (empty when
 * coverage is no worse than the baseline). New coverage beyond the
 * baseline is never a regression.
 */
std::string coverageRegressions(const CoverageReport& baseline,
                                const CoverageReport& measured);

} // namespace vortex::fuzz
