/**
 * @file
 * Corpus-coverage measurement and its pinned JSON format (coverage.h).
 */

#include "fuzz/coverage.h"

#include <sstream>

#include "analysis/analysis.h"
#include "common/log.h"
#include "isa/assembler.h"
#include "isa/object.h"
#include "kernels/kernels.h"
#include "runtime/device.h"

namespace vortex::fuzz {

namespace {

/** Name of the decoder dispatch path for a raw encoding's major
 *  opcode, or nullptr for encodings no path accepts. */
const char*
decodePathName(uint32_t raw)
{
    switch (raw & 0x7F) {
    case isa::OPC_LOAD:     return "LOAD";
    case isa::OPC_LOAD_FP:  return "LOAD-FP";
    case isa::OPC_VORTEX:   return "VORTEX";
    case isa::OPC_MISC_MEM: return "MISC-MEM";
    case isa::OPC_OP_IMM:   return "OP-IMM";
    case isa::OPC_AUIPC:    return "AUIPC";
    case isa::OPC_STORE:    return "STORE";
    case isa::OPC_STORE_FP: return "STORE-FP";
    case isa::OPC_TEX:      return "TEX";
    case isa::OPC_OP:       return "OP";
    case isa::OPC_LUI:      return "LUI";
    case isa::OPC_MADD:     return "MADD";
    case isa::OPC_MSUB:     return "MSUB";
    case isa::OPC_NMSUB:    return "NMSUB";
    case isa::OPC_NMADD:    return "NMADD";
    case isa::OPC_OP_FP:    return "OP-FP";
    case isa::OPC_BRANCH:   return "BRANCH";
    case isa::OPC_JALR:     return "JALR";
    case isa::OPC_JAL:      return "JAL";
    case isa::OPC_SYSTEM:   return "SYSTEM";
    default:                return nullptr;
    }
}

/** Emit a JSON array of strings from a sorted set. */
void
writeArray(std::ostream& os, const char* key,
           const std::set<std::string>& values)
{
    os << "  \"" << key << "\": [";
    bool first = true;
    for (const std::string& v : values) {
        os << (first ? "" : ", ") << "\"" << v << "\"";
        first = false;
    }
    os << "]";
}

/** Pull the string-array value of @p key out of coverageJson() output. */
std::set<std::string>
readArray(const std::string& text, const char* key,
          const std::string& what)
{
    std::string needle = std::string("\"") + key + "\": [";
    size_t at = text.find(needle);
    if (at == std::string::npos)
        fatal(what, ": missing coverage key '", key, "'");
    size_t end = text.find(']', at);
    if (end == std::string::npos)
        fatal(what, ": unterminated array for key '", key, "'");
    std::set<std::string> out;
    size_t i = at + needle.size();
    while (i < end) {
        size_t open = text.find('"', i);
        if (open == std::string::npos || open > end)
            break;
        size_t close = text.find('"', open + 1);
        if (close == std::string::npos || close > end)
            fatal(what, ": unterminated string in array '", key, "'");
        out.insert(text.substr(open + 1, close - open - 1));
        i = close + 1;
    }
    return out;
}

/** Pull a bare unsigned value out of coverageJson() output. */
uint64_t
readU64(const std::string& text, const char* key, const std::string& what)
{
    std::string needle = std::string("\"") + key + "\": ";
    size_t at = text.find(needle);
    if (at == std::string::npos)
        fatal(what, ": missing coverage key '", key, "'");
    size_t i = at + needle.size();
    uint64_t v = 0;
    bool any = false;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
        v = v * 10 + static_cast<uint64_t>(text[i] - '0');
        ++i;
        any = true;
    }
    if (!any)
        fatal(what, ": key '", key, "' is not a number");
    return v;
}

/** List the baseline entries of @p kind missing from @p measured. */
void
reportMissing(std::ostream& os, const char* kind,
              const std::set<std::string>& baseline,
              const std::set<std::string>& measured)
{
    for (const std::string& v : baseline)
        if (!measured.count(v))
            os << kind << " '" << v
               << "' is in the baseline but no longer exercised\n";
}

} // namespace

CoverageReport
measureCoverage(uint64_t startSeed, uint32_t count, const GenOptions& opts)
{
    CoverageReport report;
    report.startSeed = startSeed;
    report.seeds = count;
    core::ArchConfig config = fuzzConfig();
    for (uint64_t seed = startSeed; seed < startSeed + count; ++seed) {
        GeneratedKernel k = generateKernel(seed, opts);
        const std::string unit = "<fuzz:" + std::to_string(seed) + ">";
        isa::Assembler assembler(config.startPC);
        isa::ObjectFile obj = assembler.assembleObject(
            {{"<runtime>", kernels::runtimeSource()}, {unit, k.source}});
        isa::Program program = obj.toProgram(config.startPC);

        // Decode every word of the executable sections: the mnemonics
        // and major-opcode dispatch paths the corpus reaches.
        for (const isa::ObjSection& s : obj.sections) {
            if (!s.exec)
                continue;
            for (uint32_t off = s.offset; off + 4 <= s.offset + s.size;
                 off += 4) {
                uint32_t raw = static_cast<uint32_t>(program.image[off]) |
                               static_cast<uint32_t>(
                                   program.image[off + 1]) << 8 |
                               static_cast<uint32_t>(
                                   program.image[off + 2]) << 16 |
                               static_cast<uint32_t>(
                                   program.image[off + 3]) << 24;
                isa::Instr in = isa::decode(raw);
                if (!in.valid())
                    continue;
                report.instrKinds.insert(isa::instrInfo(in.kind).mnemonic);
                if (const char* path = decodePathName(raw))
                    report.decodePaths.insert(path);
            }
        }

        analysis::Report rep = analysis::analyze(
            program, runtime::analyzerOptions(config, program));
        report.analyzerChecks.insert(rep.exercisedChecks.begin(),
                                     rep.exercisedChecks.end());
    }
    return report;
}

std::string
coverageJson(const CoverageReport& report)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"spec\": \"vortex-fuzz-coverage/v1\",\n";
    os << "  \"startSeed\": " << report.startSeed << ",\n";
    os << "  \"seeds\": " << report.seeds << ",\n";
    writeArray(os, "instrKinds", report.instrKinds);
    os << ",\n";
    writeArray(os, "decodePaths", report.decodePaths);
    os << ",\n";
    writeArray(os, "analyzerChecks", report.analyzerChecks);
    os << "\n}\n";
    return os.str();
}

CoverageReport
parseCoverageJson(const std::string& text, const std::string& what)
{
    if (text.find("\"vortex-fuzz-coverage/v1\"") == std::string::npos)
        fatal(what, ": not a vortex-fuzz-coverage/v1 document");
    CoverageReport report;
    report.startSeed = readU64(text, "startSeed", what);
    report.seeds = static_cast<uint32_t>(readU64(text, "seeds", what));
    report.instrKinds = readArray(text, "instrKinds", what);
    report.decodePaths = readArray(text, "decodePaths", what);
    report.analyzerChecks = readArray(text, "analyzerChecks", what);
    return report;
}

std::string
coverageRegressions(const CoverageReport& baseline,
                    const CoverageReport& measured)
{
    std::ostringstream os;
    reportMissing(os, "InstrKind", baseline.instrKinds,
                  measured.instrKinds);
    reportMissing(os, "decode path", baseline.decodePaths,
                  measured.decodePaths);
    reportMissing(os, "analyzer check", baseline.analyzerChecks,
                  measured.analyzerChecks);
    return os.str();
}

} // namespace vortex::fuzz
