/**
 * @file
 * Seeded guest-program generator and serial-vs-parallel differential
 * oracle (see fuzz.h). The generator builds structurally well-formed
 * programs by construction: every split has a matching join on all
 * paths, loops have uniform bounded trip counts, wspawn/bar stay inside
 * the runtime's spawn_tasks, and every memory access is masked into the
 * harness-provided scratch buffer. Task bodies never execute `bar` —
 * spawn_tasks calls them under divergence (inside split/join), where a
 * barrier would deadlock.
 *
 * Data-race freedom (the precondition of the backends' bit-identity
 * contract, see fuzz.h): loads are masked into the read-only lower half
 * of the scratch buffer, and every store goes through a5, which the
 * task prologue points at this task's own slot — upper half, one word
 * per (spawn round, task id) pair.
 */

#include "fuzz/fuzz.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "analysis/analysis.h"
#include "common/log.h"
#include "common/rng.h"
#include "runtime/device.h"

namespace vortex::fuzz {

namespace {

/** Scratch integer value pool the generator reads and writes. a0 (task
 *  id) and a1 (kargs pointer) are read-only inputs; t6 is the loop
 *  counter, a6 the scratch base, a7 the address/predicate temp, and a5
 *  the task's private store-slot address. */
const char* const kPool[] = {"t0", "t1", "t2", "t3", "t4",
                             "t5", "a2", "a3", "a4"};
constexpr uint32_t kPoolSize = 9;

const char* const kFpu[] = {"ft0", "ft1", "ft2"};
constexpr uint32_t kFpuSize = 3;

/** Words in the shared read-only `fuzz_table` rodata blob. */
constexpr uint32_t kTableWords = 16;

/** Emits one task function's worth of random-but-well-formed assembly. */
class TaskGen
{
  public:
    TaskGen(Xorshift& rng, const GenOptions& opts, std::ostringstream& out,
            uint32_t taskIndex, uint32_t fnCount)
        : r_(rng), opts_(opts), out_(out), task_(taskIndex),
          fnCount_(fnCount), loadMask_(opts.scratchWords / 2 - 1),
          idMask_(opts.scratchWords / 4 - 1),
          slotBase_((opts.scratchWords / 2 +
                     taskIndex * (opts.scratchWords / 4)) *
                    4)
    {
    }

    void
    emit(const std::string& name)
    {
        out_ << name << ":\n";
        prologue();
        ops(opts_.maxBodyOps, /*depth=*/0, /*allowLoop=*/true);
        epilogue();
    }

  private:
    const char*
    pool()
    {
        return kPool[r_.nextBounded(kPoolSize)];
    }

    const char*
    fpu()
    {
        return kFpu[r_.nextBounded(kFpuSize)];
    }

    int
    smallImm()
    {
        return static_cast<int>(r_.nextBounded(128)) - 64;
    }

    std::string
    label()
    {
        return ".Lf" + std::to_string(task_) + "_" +
               std::to_string(label_++);
    }

    /** a7 = scratch + 4 * (reg & loadMask): always inside the read-only
     *  lower half, whatever value the register soup produced. */
    void
    address(const char* reg)
    {
        out_ << "    andi a7, " << reg << ", " << loadMask_ << "\n";
        out_ << "    slli a7, a7, 2\n";
        out_ << "    add a7, a7, a6\n";
    }

    /** Give every pool register (and the FP pool) a task-id-derived
     *  value up front so no path reads an undefined register, and point
     *  a5 at this task's private store slot in the upper half. The
     *  frame saves ra (clobbered by leaf-function calls) and s1 (the
     *  callee-saved inner-loop counter) so every task honours the
     *  spawn_tasks ABI regardless of which shapes its body drew. */
    void
    prologue()
    {
        out_ << "    addi sp, sp, -16\n";
        out_ << "    sw ra, 12(sp)\n";
        out_ << "    sw s1, 8(sp)\n";
        out_ << "    lw a6, 4(a1)\n"; // scratch base from the mailbox
        out_ << "    andi a5, a0, " << idMask_ << "\n";
        out_ << "    slli a5, a5, 2\n";
        out_ << "    add a5, a5, a6\n";
        out_ << "    addi a5, a5, " << slotBase_ << "\n";
        for (uint32_t i = 0; i < kPoolSize; ++i) {
            switch (r_.nextBounded(4)) {
            case 0:
                out_ << "    addi " << kPool[i] << ", a0, " << smallImm()
                     << "\n";
                break;
            case 1:
                out_ << "    slli " << kPool[i] << ", a0, "
                     << 1 + r_.nextBounded(4) << "\n";
                break;
            case 2:
                out_ << "    xori " << kPool[i] << ", a0, " << smallImm()
                     << "\n";
                break;
            default:
                out_ << "    sub " << kPool[i] << ", zero, a0\n";
                break;
            }
        }
        for (uint32_t i = 0; i < kFpuSize; ++i)
            out_ << "    fmv.w.x " << kFpu[i] << ", " << pool() << "\n";
    }

    /** Store one pool register to this task's own scratch slot, so every
     *  task leaves a deterministic footprint even if the random body
     *  emitted no stores. */
    void
    epilogue()
    {
        out_ << "    sw " << pool() << ", 0(a5)\n";
        out_ << "    lw s1, 8(sp)\n";
        out_ << "    lw ra, 12(sp)\n";
        out_ << "    addi sp, sp, 16\n";
        out_ << "    ret\n";
    }

    void
    aluOp()
    {
        // Division by zero and overflow are fully defined in RV32M
        // (quotient -1 / dividend), so div/rem on register soup is as
        // deterministic as add.
        static const char* const kOps[] = {
            "add",  "sub",    "xor",   "or",   "and",  "mul",
            "slt",  "sltu",   "sll",   "srl",  "sra",  "mulh",
            "mulhu", "mulhsu", "div",  "divu", "rem",  "remu"};
        out_ << "    " << kOps[r_.nextBounded(18)] << " " << pool() << ", "
             << pool() << ", " << pool() << "\n";
    }

    void
    aluImmOp()
    {
        if (r_.nextBounded(2)) {
            static const char* const kOps[] = {"addi", "xori", "ori",
                                               "andi"};
            out_ << "    " << kOps[r_.nextBounded(4)] << " " << pool()
                 << ", " << pool() << ", " << smallImm() << "\n";
        } else {
            static const char* const kOps[] = {"slli", "srli", "srai"};
            out_ << "    " << kOps[r_.nextBounded(3)] << " " << pool()
                 << ", " << pool() << ", " << 1 + r_.nextBounded(8)
                 << "\n";
        }
    }

    void
    fpOp()
    {
        switch (r_.nextBounded(10)) {
        case 0:
            out_ << "    fadd.s " << fpu() << ", " << fpu() << ", "
                 << fpu() << "\n";
            break;
        case 1:
            out_ << "    fsub.s " << fpu() << ", " << fpu() << ", "
                 << fpu() << "\n";
            break;
        case 2:
            out_ << "    fmul.s " << fpu() << ", " << fpu() << ", "
                 << fpu() << "\n";
            break;
        case 3:
            out_ << "    fmadd.s " << fpu() << ", " << fpu() << ", "
                 << fpu() << ", " << fpu() << "\n";
            break;
        case 4:
            out_ << "    fdiv.s " << fpu() << ", " << fpu() << ", "
                 << fpu() << "\n";
            break;
        case 5:
            out_ << "    fsqrt.s " << fpu() << ", " << fpu() << "\n";
            break;
        case 6:
            out_ << "    " << (r_.nextBounded(2) ? "fmin.s" : "fmax.s")
                 << " " << fpu() << ", " << fpu() << ", " << fpu()
                 << "\n";
            break;
        case 7:
            out_ << "    " << (r_.nextBounded(2) ? "feq.s" : "flt.s")
                 << " " << pool() << ", " << fpu() << ", " << fpu()
                 << "\n";
            break;
        case 8:
            out_ << "    fsgnjx.s " << fpu() << ", " << fpu() << ", "
                 << fpu() << "\n";
            break;
        default:
            out_ << "    fmv.w.x " << fpu() << ", " << pool() << "\n";
            break;
        }
    }

    void
    loadOp()
    {
        if (r_.nextBounded(4) == 0) {
            // The task's own slot: only this task ever writes it.
            out_ << "    lw " << pool() << ", 0(a5)\n";
            return;
        }
        address(pool());
        switch (r_.nextBounded(8)) {
        case 0:
            out_ << "    flw " << fpu() << ", 0(a7)\n";
            break;
        case 1:
            out_ << "    lb " << pool() << ", "
                 << r_.nextBounded(4) << "(a7)\n";
            break;
        case 2:
            out_ << "    lbu " << pool() << ", "
                 << r_.nextBounded(4) << "(a7)\n";
            break;
        case 3:
            out_ << "    lh " << pool() << ", "
                 << 2 * r_.nextBounded(2) << "(a7)\n";
            break;
        case 4:
            out_ << "    lhu " << pool() << ", "
                 << 2 * r_.nextBounded(2) << "(a7)\n";
            break;
        default:
            out_ << "    lw " << pool() << ", 0(a7)\n";
            break;
        }
    }

    /** Stores go only to the private slot — any address derived from
     *  the value pool could collide with a sibling task's store. */
    void
    storeOp()
    {
        switch (r_.nextBounded(6)) {
        case 0:
            out_ << "    fsw " << fpu() << ", 0(a5)\n";
            break;
        case 1:
            out_ << "    sb " << pool() << ", "
                 << r_.nextBounded(4) << "(a5)\n";
            break;
        case 2:
            out_ << "    sh " << pool() << ", "
                 << 2 * r_.nextBounded(2) << "(a5)\n";
            break;
        default:
            out_ << "    sw " << pool() << ", 0(a5)\n";
            break;
        }
    }

    /** Load from the shared read-only rodata table. Half the draws use
     *  a fixed offset whose address constant-folds (`la` is auipc+addi),
     *  so the static analyzer's mem.align/mem.bounds checks fire on the
     *  resolved address; the other half index dynamically through the
     *  usual register soup (masked into the table). */
    void
    rodataOp()
    {
        out_ << "    la a7, fuzz_table\n";
        if (r_.nextBounded(2)) {
            out_ << "    lw " << pool() << ", "
                 << 4 * r_.nextBounded(kTableWords) << "(a7)\n";
        } else {
            // Mask to a word offset inside the table (bits 2..5 only).
            const char* idx = pool();
            out_ << "    andi " << idx << ", " << idx << ", "
                 << (kTableWords - 1) * 4 << "\n";
            out_ << "    add a7, a7, " << idx << "\n";
            out_ << "    lw " << pool() << ", 0(a7)\n";
        }
    }

    /** Call one of the program's shared leaf helpers: two pool values
     *  in, one result out. Calls may sit inside split regions — the
     *  helpers are barrier-free, which is exactly the case the
     *  analyzer's call-site divergence check must accept. */
    void
    callOp()
    {
        out_ << "    mv a0, " << pool() << "\n";
        out_ << "    mv a1, " << pool() << "\n";
        out_ << "    call fuzz_fn" << r_.nextBounded(fnCount_) << "\n";
        out_ << "    mv " << pool() << ", a0\n";
    }

    /** Balanced divergence: split on a data-dependent predicate, run the
     *  then-block (and optionally an else-block), join. The predicate
     *  lives in a7, which is dead again right after the branch. */
    void
    splitBlock(uint32_t budget, int depth)
    {
        out_ << "    andi a7, " << pool() << ", 1\n";
        out_ << "    vx_split a7\n";
        if (r_.nextBounded(2)) { // one-sided
            std::string join = label();
            out_ << "    beqz a7, " << join << "\n";
            ops(budget, depth + 1, false);
            out_ << join << ":\n";
        } else { // two-sided
            std::string els = label();
            std::string end = label();
            uint32_t thenOps = 1 + r_.nextBounded(budget);
            out_ << "    beqz a7, " << els << "\n";
            ops(thenOps, depth + 1, false);
            out_ << "    j " << end << "\n";
            out_ << els << ":\n";
            ops(budget, depth + 1, false);
            out_ << end << ":\n";
        }
        out_ << "    vx_join\n";
    }

    /** One bounded loop with a uniform trip count in t6, optionally
     *  wrapping a nested inner loop counted in s1 (callee-saved, so the
     *  task frame preserves it for the runtime). At most one outer loop
     *  per task (t6/s1 are the only counter registers) and only at top
     *  level; trip counts are compile-time constants, so the backward
     *  branches are uniform across the wavefront. */
    void
    loopBlock(uint32_t budget, int depth)
    {
        std::string head = label();
        out_ << "    li t6, " << 2 + r_.nextBounded(3) << "\n";
        out_ << head << ":\n";
        if (budget >= 4 && r_.nextBounded(2)) {
            uint32_t innerBudget = 1 + r_.nextBounded(budget - 3);
            ops(budget - innerBudget - 1, depth + 1, false);
            std::string inner = label();
            out_ << "    li s1, " << 2 + r_.nextBounded(2) << "\n";
            out_ << inner << ":\n";
            ops(innerBudget, depth + 1, false);
            out_ << "    addi s1, s1, -1\n";
            out_ << "    bnez s1, " << inner << "\n";
        } else {
            ops(budget, depth + 1, false);
        }
        out_ << "    addi t6, t6, -1\n";
        out_ << "    bnez t6, " << head << "\n";
    }

    /** Emit @p count random operations at @p depth (split nesting). */
    void
    ops(uint32_t count, int depth, bool allowLoop)
    {
        while (count > 0) {
            uint32_t kind = r_.nextBounded(14);
            if (kind >= 12 && count >= 4 && depth < 2) {
                uint32_t inner = 1 + r_.nextBounded(count - 2);
                if (kind == 13 && allowLoop && depth == 0 &&
                    !loopEmitted_) {
                    loopEmitted_ = true;
                    loopBlock(inner, depth);
                } else {
                    splitBlock(inner, depth);
                }
                count -= inner + 1;
                continue;
            }
            switch (kind % 7) {
            case 0:
            case 1: aluOp(); break;
            case 2: aluImmOp(); break;
            case 3: fpOp(); break;
            case 4: rodataOp(); break;
            case 5:
                if (fnCount_ > 0)
                    callOp();
                else
                    aluOp();
                break;
            default: r_.nextBounded(2) ? loadOp() : storeOp(); break;
            }
            --count;
        }
    }

    Xorshift& r_;
    const GenOptions& opts_;
    std::ostringstream& out_;
    uint32_t task_;
    uint32_t fnCount_;
    uint32_t loadMask_;
    uint32_t idMask_;
    uint32_t slotBase_;
    int label_ = 0;
    bool loopEmitted_ = false;
};

/** One barrier-free leaf helper: a0/a1 in, a0 out, t0-t2 scratch. The
 *  body is a short random ALU chain seeded from the arguments so no
 *  path reads an undefined register. */
void
emitLeafFn(Xorshift& r, std::ostringstream& out, uint32_t idx)
{
    out << "fuzz_fn" << idx << ":\n";
    out << "    add t0, a0, a1\n";
    out << "    xor t1, a0, t0\n";
    static const char* const kOps[] = {"add", "sub", "xor", "or",
                                       "and", "mul"};
    static const char* const kRegs[] = {"t0", "t1", "t2", "a0", "a1"};
    out << "    " << kOps[r.nextBounded(6)] << " t2, t0, t1\n";
    uint32_t n = 1 + r.nextBounded(4);
    for (uint32_t i = 0; i < n; ++i)
        out << "    " << kOps[r.nextBounded(6)] << " "
            << kRegs[r.nextBounded(3)] << ", " << kRegs[r.nextBounded(5)]
            << ", " << kRegs[r.nextBounded(5)] << "\n";
    out << "    add a0, t0, t1\n";
    out << "    ret\n";
}

} // namespace

GeneratedKernel
generateKernel(uint64_t seed, const GenOptions& opts)
{
    Xorshift r(seed);
    GeneratedKernel k;
    k.scratchWords = opts.scratchWords;
    // Unique private slot per task id: ids beyond scratchWords/4 would
    // alias a sibling's slot and reintroduce a store-store race.
    uint32_t maxTasks = std::min(opts.maxTasks, opts.scratchWords / 4);
    k.numTasks = 1 + r.nextBounded(maxTasks);
    uint32_t rounds = 1 + r.nextBounded(2);
    uint32_t fnCount = r.nextBounded(3);

    std::ostringstream out;
    out << "# fuzz seed " << seed << ": " << k.numTasks << " task(s), "
        << rounds << " spawn round(s), " << fnCount << " leaf fn(s)\n";
    out << "main:\n";
    out << "    addi sp, sp, -16\n";
    out << "    sw ra, 12(sp)\n";
    out << "    sw s0, 8(sp)\n";
    out << "    mv s0, a0\n";
    for (uint32_t i = 0; i < rounds; ++i) {
        out << "    lw a0, 0(s0)\n";
        out << "    la a1, fuzz_task" << i << "\n";
        out << "    mv a2, s0\n";
        out << "    call spawn_tasks\n";
    }
    out << "    lw s0, 8(sp)\n";
    out << "    lw ra, 12(sp)\n";
    out << "    addi sp, sp, 16\n";
    out << "    ret\n\n";
    for (uint32_t i = 0; i < rounds; ++i) {
        TaskGen(r, opts, out, i, fnCount)
            .emit("fuzz_task" + std::to_string(i));
        out << "\n";
    }
    for (uint32_t i = 0; i < fnCount; ++i) {
        emitLeafFn(r, out, i);
        out << "\n";
    }
    // The shared read-only table the rodata load shapes index into.
    out << ".rodata\n";
    out << ".align 2\n";
    out << "fuzz_table:\n";
    for (uint32_t i = 0; i < kTableWords; ++i)
        out << "    .word 0x" << std::hex
            << static_cast<uint32_t>(r.next()) << std::dec << "\n";
    k.source = out.str();
    return k;
}

core::ArchConfig
fuzzConfig()
{
    core::ArchConfig c;
    c.numCores = 2;
    c.numWarps = 2;
    c.numThreads = 4;
    return c;
}

namespace {

struct RunOutcome
{
    uint64_t cycles = 0;
    uint64_t threadInstrs = 0;
    std::vector<uint32_t> scratch;
};

} // namespace

FuzzResult
runDifferential(uint64_t seed, const core::ArchConfig& base,
                const GenOptions& opts)
{
    FuzzResult res;
    GeneratedKernel k = generateKernel(seed, opts);
    res.source = k.source;
    const std::string unit = "<fuzz:" + std::to_string(seed) + ">";

    auto runOne = [&](bool parallel, RunOutcome* out) -> bool {
        const char* backend = parallel ? "parallel" : "serial";
        core::ArchConfig cfg = base;
        cfg.parallelTick = parallel;
        cfg.tickThreads = parallel ? 2 : 0;
        try {
            runtime::Device dev(cfg);
            dev.uploadKernelObject(k.source, unit);
            analysis::Report rep = dev.verify();
            if (!rep.clean()) {
                std::ostringstream os;
                os << "analyzer flagged the generated program ("
                   << rep.errors() << " error(s), " << rep.warnings()
                   << " warning(s)):\n";
                rep.print(os, &dev.program());
                res.detail = os.str();
                return false;
            }
            Addr scratch = dev.memAlloc(k.scratchWords * 4);
            std::vector<uint32_t> init(k.scratchWords);
            Xorshift mem(seed ^ 0xA3EC59D17B4F0E25ull);
            for (uint32_t& w : init)
                w = static_cast<uint32_t>(mem.next());
            dev.copyToDev(scratch, init.data(), init.size() * 4);
            const uint32_t args[2] = {k.numTasks,
                                      static_cast<uint32_t>(scratch)};
            dev.setKernelArg(args, sizeof(args));
            dev.start();
            if (!dev.readyWait(50000000ull)) {
                res.detail = std::string("timeout on the ") + backend +
                             " backend (50M cycles)";
                return false;
            }
            out->cycles = dev.cycles();
            out->threadInstrs = dev.processor().threadInstrs();
            out->scratch.resize(k.scratchWords);
            dev.copyFromDev(out->scratch.data(), scratch,
                            k.scratchWords * 4);
            return true;
        } catch (const FatalError& e) {
            res.detail = std::string("fatal error on the ") + backend +
                         " backend: " + e.what();
            return false;
        }
    };

    RunOutcome serial, par;
    if (!runOne(false, &serial) || !runOne(true, &par))
        return res;

    res.cycles = serial.cycles;
    res.threadInstrs = serial.threadInstrs;
    std::ostringstream os;
    if (serial.cycles != par.cycles)
        os << "cycles diverge: serial " << serial.cycles << " vs parallel "
           << par.cycles << "\n";
    if (serial.threadInstrs != par.threadInstrs)
        os << "thread instrs diverge: serial " << serial.threadInstrs
           << " vs parallel " << par.threadInstrs << "\n";
    for (uint32_t i = 0; i < k.scratchWords; ++i) {
        if (serial.scratch[i] != par.scratch[i]) {
            os << "scratch[" << i << "] diverges: serial 0x" << std::hex
               << serial.scratch[i] << " vs parallel 0x" << par.scratch[i]
               << std::dec << "\n";
            break; // first mismatch is enough to pin the failure
        }
    }
    res.detail = os.str();
    res.ok = res.detail.empty();
    return res;
}

} // namespace vortex::fuzz
