/**
 * @file
 * Seeded guest-program generator and serial-vs-parallel differential
 * oracle (see fuzz.h). The generator builds structurally well-formed
 * programs by construction: every split has a matching join on all
 * paths, loops have uniform bounded trip counts, wspawn/bar stay inside
 * the runtime's spawn_tasks, and every memory access is masked into the
 * harness-provided scratch buffer. Task bodies never execute `bar` —
 * spawn_tasks calls them under divergence (inside split/join), where a
 * barrier would deadlock.
 *
 * Data-race freedom (the precondition of the backends' bit-identity
 * contract, see fuzz.h): loads are masked into the read-only lower half
 * of the scratch buffer, and every store goes through a5, which the
 * task prologue points at this task's own slot — upper half, one word
 * per (spawn round, task id) pair.
 */

#include "fuzz/fuzz.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "analysis/analysis.h"
#include "common/log.h"
#include "common/rng.h"
#include "runtime/device.h"

namespace vortex::fuzz {

namespace {

/** Scratch integer value pool the generator reads and writes. a0 (task
 *  id) and a1 (kargs pointer) are read-only inputs; t6 is the loop
 *  counter, a6 the scratch base, a7 the address/predicate temp, and a5
 *  the task's private store-slot address. */
const char* const kPool[] = {"t0", "t1", "t2", "t3", "t4",
                             "t5", "a2", "a3", "a4"};
constexpr uint32_t kPoolSize = 9;

const char* const kFpu[] = {"ft0", "ft1", "ft2"};
constexpr uint32_t kFpuSize = 3;

/** Emits one task function's worth of random-but-well-formed assembly. */
class TaskGen
{
  public:
    TaskGen(Xorshift& rng, const GenOptions& opts, std::ostringstream& out,
            uint32_t taskIndex)
        : r_(rng), opts_(opts), out_(out), task_(taskIndex),
          loadMask_(opts.scratchWords / 2 - 1),
          idMask_(opts.scratchWords / 4 - 1),
          slotBase_((opts.scratchWords / 2 +
                     taskIndex * (opts.scratchWords / 4)) *
                    4)
    {
    }

    void
    emit(const std::string& name)
    {
        out_ << name << ":\n";
        prologue();
        ops(opts_.maxBodyOps, /*depth=*/0, /*allowLoop=*/true);
        epilogue();
    }

  private:
    const char*
    pool()
    {
        return kPool[r_.nextBounded(kPoolSize)];
    }

    const char*
    fpu()
    {
        return kFpu[r_.nextBounded(kFpuSize)];
    }

    int
    smallImm()
    {
        return static_cast<int>(r_.nextBounded(128)) - 64;
    }

    std::string
    label()
    {
        return ".Lf" + std::to_string(task_) + "_" +
               std::to_string(label_++);
    }

    /** a7 = scratch + 4 * (reg & loadMask): always inside the read-only
     *  lower half, whatever value the register soup produced. */
    void
    address(const char* reg)
    {
        out_ << "    andi a7, " << reg << ", " << loadMask_ << "\n";
        out_ << "    slli a7, a7, 2\n";
        out_ << "    add a7, a7, a6\n";
    }

    /** Give every pool register (and the FP pool) a task-id-derived
     *  value up front so no path reads an undefined register, and point
     *  a5 at this task's private store slot in the upper half. */
    void
    prologue()
    {
        out_ << "    lw a6, 4(a1)\n"; // scratch base from the mailbox
        out_ << "    andi a5, a0, " << idMask_ << "\n";
        out_ << "    slli a5, a5, 2\n";
        out_ << "    add a5, a5, a6\n";
        out_ << "    addi a5, a5, " << slotBase_ << "\n";
        for (uint32_t i = 0; i < kPoolSize; ++i) {
            switch (r_.nextBounded(4)) {
            case 0:
                out_ << "    addi " << kPool[i] << ", a0, " << smallImm()
                     << "\n";
                break;
            case 1:
                out_ << "    slli " << kPool[i] << ", a0, "
                     << 1 + r_.nextBounded(4) << "\n";
                break;
            case 2:
                out_ << "    xori " << kPool[i] << ", a0, " << smallImm()
                     << "\n";
                break;
            default:
                out_ << "    sub " << kPool[i] << ", zero, a0\n";
                break;
            }
        }
        for (uint32_t i = 0; i < kFpuSize; ++i)
            out_ << "    fmv.w.x " << kFpu[i] << ", " << pool() << "\n";
    }

    /** Store one pool register to this task's own scratch slot, so every
     *  task leaves a deterministic footprint even if the random body
     *  emitted no stores. */
    void
    epilogue()
    {
        out_ << "    sw " << pool() << ", 0(a5)\n";
        out_ << "    ret\n";
    }

    void
    aluOp()
    {
        static const char* const kOps[] = {"add", "sub",  "xor", "or",
                                           "and", "mul",  "slt", "sltu"};
        out_ << "    " << kOps[r_.nextBounded(8)] << " " << pool() << ", "
             << pool() << ", " << pool() << "\n";
    }

    void
    aluImmOp()
    {
        if (r_.nextBounded(2)) {
            static const char* const kOps[] = {"addi", "xori", "ori",
                                               "andi"};
            out_ << "    " << kOps[r_.nextBounded(4)] << " " << pool()
                 << ", " << pool() << ", " << smallImm() << "\n";
        } else {
            static const char* const kOps[] = {"slli", "srli", "srai"};
            out_ << "    " << kOps[r_.nextBounded(3)] << " " << pool()
                 << ", " << pool() << ", " << 1 + r_.nextBounded(8)
                 << "\n";
        }
    }

    void
    fpOp()
    {
        switch (r_.nextBounded(5)) {
        case 0:
            out_ << "    fadd.s " << fpu() << ", " << fpu() << ", "
                 << fpu() << "\n";
            break;
        case 1:
            out_ << "    fsub.s " << fpu() << ", " << fpu() << ", "
                 << fpu() << "\n";
            break;
        case 2:
            out_ << "    fmul.s " << fpu() << ", " << fpu() << ", "
                 << fpu() << "\n";
            break;
        case 3:
            out_ << "    fmadd.s " << fpu() << ", " << fpu() << ", "
                 << fpu() << ", " << fpu() << "\n";
            break;
        default:
            out_ << "    fmv.w.x " << fpu() << ", " << pool() << "\n";
            break;
        }
    }

    void
    loadOp()
    {
        if (r_.nextBounded(4) == 0) {
            // The task's own slot: only this task ever writes it.
            out_ << "    lw " << pool() << ", 0(a5)\n";
            return;
        }
        address(pool());
        if (r_.nextBounded(4) == 0)
            out_ << "    flw " << fpu() << ", 0(a7)\n";
        else
            out_ << "    lw " << pool() << ", 0(a7)\n";
    }

    /** Stores go only to the private slot — any address derived from
     *  the value pool could collide with a sibling task's store. */
    void
    storeOp()
    {
        if (r_.nextBounded(4) == 0)
            out_ << "    fsw " << fpu() << ", 0(a5)\n";
        else
            out_ << "    sw " << pool() << ", 0(a5)\n";
    }

    /** Balanced divergence: split on a data-dependent predicate, run the
     *  then-block (and optionally an else-block), join. The predicate
     *  lives in a7, which is dead again right after the branch. */
    void
    splitBlock(uint32_t budget, int depth)
    {
        out_ << "    andi a7, " << pool() << ", 1\n";
        out_ << "    vx_split a7\n";
        if (r_.nextBounded(2)) { // one-sided
            std::string join = label();
            out_ << "    beqz a7, " << join << "\n";
            ops(budget, depth + 1, false);
            out_ << join << ":\n";
        } else { // two-sided
            std::string els = label();
            std::string end = label();
            uint32_t thenOps = 1 + r_.nextBounded(budget);
            out_ << "    beqz a7, " << els << "\n";
            ops(thenOps, depth + 1, false);
            out_ << "    j " << end << "\n";
            out_ << els << ":\n";
            ops(budget, depth + 1, false);
            out_ << end << ":\n";
        }
        out_ << "    vx_join\n";
    }

    /** One bounded loop with a uniform trip count in t6. At most one per
     *  task (t6 is the only counter register) and only at top level. */
    void
    loopBlock(uint32_t budget, int depth)
    {
        std::string head = label();
        out_ << "    li t6, " << 2 + r_.nextBounded(3) << "\n";
        out_ << head << ":\n";
        ops(budget, depth + 1, false);
        out_ << "    addi t6, t6, -1\n";
        out_ << "    bnez t6, " << head << "\n";
    }

    /** Emit @p count random operations at @p depth (split nesting). */
    void
    ops(uint32_t count, int depth, bool allowLoop)
    {
        while (count > 0) {
            uint32_t kind = r_.nextBounded(12);
            if (kind >= 10 && count >= 4 && depth < 2) {
                uint32_t inner = 1 + r_.nextBounded(count - 2);
                if (kind == 11 && allowLoop && depth == 0 &&
                    !loopEmitted_) {
                    loopEmitted_ = true;
                    loopBlock(inner, depth);
                } else {
                    splitBlock(inner, depth);
                }
                count -= inner + 1;
                continue;
            }
            switch (kind % 5) {
            case 0:
            case 1: aluOp(); break;
            case 2: aluImmOp(); break;
            case 3: fpOp(); break;
            default: r_.nextBounded(2) ? loadOp() : storeOp(); break;
            }
            --count;
        }
    }

    Xorshift& r_;
    const GenOptions& opts_;
    std::ostringstream& out_;
    uint32_t task_;
    uint32_t loadMask_;
    uint32_t idMask_;
    uint32_t slotBase_;
    int label_ = 0;
    bool loopEmitted_ = false;
};

} // namespace

GeneratedKernel
generateKernel(uint64_t seed, const GenOptions& opts)
{
    Xorshift r(seed);
    GeneratedKernel k;
    k.scratchWords = opts.scratchWords;
    // Unique private slot per task id: ids beyond scratchWords/4 would
    // alias a sibling's slot and reintroduce a store-store race.
    uint32_t maxTasks = std::min(opts.maxTasks, opts.scratchWords / 4);
    k.numTasks = 1 + r.nextBounded(maxTasks);
    uint32_t rounds = 1 + r.nextBounded(2);

    std::ostringstream out;
    out << "# fuzz seed " << seed << ": " << k.numTasks << " task(s), "
        << rounds << " spawn round(s)\n";
    out << "main:\n";
    out << "    addi sp, sp, -16\n";
    out << "    sw ra, 12(sp)\n";
    out << "    sw s0, 8(sp)\n";
    out << "    mv s0, a0\n";
    for (uint32_t i = 0; i < rounds; ++i) {
        out << "    lw a0, 0(s0)\n";
        out << "    la a1, fuzz_task" << i << "\n";
        out << "    mv a2, s0\n";
        out << "    call spawn_tasks\n";
    }
    out << "    lw s0, 8(sp)\n";
    out << "    lw ra, 12(sp)\n";
    out << "    addi sp, sp, 16\n";
    out << "    ret\n\n";
    for (uint32_t i = 0; i < rounds; ++i) {
        TaskGen(r, opts, out, i).emit("fuzz_task" + std::to_string(i));
        out << "\n";
    }
    k.source = out.str();
    return k;
}

core::ArchConfig
fuzzConfig()
{
    core::ArchConfig c;
    c.numCores = 2;
    c.numWarps = 2;
    c.numThreads = 4;
    return c;
}

namespace {

struct RunOutcome
{
    uint64_t cycles = 0;
    uint64_t threadInstrs = 0;
    std::vector<uint32_t> scratch;
};

} // namespace

FuzzResult
runDifferential(uint64_t seed, const core::ArchConfig& base,
                const GenOptions& opts)
{
    FuzzResult res;
    GeneratedKernel k = generateKernel(seed, opts);
    res.source = k.source;
    const std::string unit = "<fuzz:" + std::to_string(seed) + ">";

    auto runOne = [&](bool parallel, RunOutcome* out) -> bool {
        const char* backend = parallel ? "parallel" : "serial";
        core::ArchConfig cfg = base;
        cfg.parallelTick = parallel;
        cfg.tickThreads = parallel ? 2 : 0;
        try {
            runtime::Device dev(cfg);
            dev.uploadKernelObject(k.source, unit);
            analysis::Report rep = dev.verify();
            if (!rep.clean()) {
                std::ostringstream os;
                os << "analyzer flagged the generated program ("
                   << rep.errors() << " error(s), " << rep.warnings()
                   << " warning(s)):\n";
                rep.print(os, &dev.program());
                res.detail = os.str();
                return false;
            }
            Addr scratch = dev.memAlloc(k.scratchWords * 4);
            std::vector<uint32_t> init(k.scratchWords);
            Xorshift mem(seed ^ 0xA3EC59D17B4F0E25ull);
            for (uint32_t& w : init)
                w = static_cast<uint32_t>(mem.next());
            dev.copyToDev(scratch, init.data(), init.size() * 4);
            const uint32_t args[2] = {k.numTasks,
                                      static_cast<uint32_t>(scratch)};
            dev.setKernelArg(args, sizeof(args));
            dev.start();
            if (!dev.readyWait(50000000ull)) {
                res.detail = std::string("timeout on the ") + backend +
                             " backend (50M cycles)";
                return false;
            }
            out->cycles = dev.cycles();
            out->threadInstrs = dev.processor().threadInstrs();
            out->scratch.resize(k.scratchWords);
            dev.copyFromDev(out->scratch.data(), scratch,
                            k.scratchWords * 4);
            return true;
        } catch (const FatalError& e) {
            res.detail = std::string("fatal error on the ") + backend +
                         " backend: " + e.what();
            return false;
        }
    };

    RunOutcome serial, par;
    if (!runOne(false, &serial) || !runOne(true, &par))
        return res;

    res.cycles = serial.cycles;
    res.threadInstrs = serial.threadInstrs;
    std::ostringstream os;
    if (serial.cycles != par.cycles)
        os << "cycles diverge: serial " << serial.cycles << " vs parallel "
           << par.cycles << "\n";
    if (serial.threadInstrs != par.threadInstrs)
        os << "thread instrs diverge: serial " << serial.threadInstrs
           << " vs parallel " << par.threadInstrs << "\n";
    for (uint32_t i = 0; i < k.scratchWords; ++i) {
        if (serial.scratch[i] != par.scratch[i]) {
            os << "scratch[" << i << "] diverges: serial 0x" << std::hex
               << serial.scratch[i] << " vs parallel 0x" << par.scratch[i]
               << std::dec << "\n";
            break; // first mismatch is enough to pin the failure
        }
    }
    res.detail = os.str();
    res.ok = res.detail.empty();
    return res;
}

} // namespace vortex::fuzz
