/**
 * @file
 * Texture unit cycle model implementation.
 */

#include "tex/texunit.h"

#include <algorithm>

#include "common/log.h"

namespace vortex::tex {

using isa::Csr;

TexUnit::TexUnit(const TexUnitConfig& config, const mem::Ram& ram,
                 mem::Cache* dcache, std::function<uint64_t()> allocReqId)
    : config_(config),
      ram_(ram),
      dcache_(dcache),
      allocReqId_(std::move(allocReqId)),
      stages_(isa::kNumTexStages),
      input_(config.inputDepth, "texunit.input"),
      samplerPipe_(config.samplerLatency)
{
}

SamplerState&
TexUnit::stageState(uint32_t stage)
{
    if (stage >= stages_.size())
        fatal("texture stage ", stage, " out of range");
    return stages_[stage];
}

const SamplerState&
TexUnit::stageState(uint32_t stage) const
{
    if (stage >= stages_.size())
        fatal("texture stage ", stage, " out of range");
    return stages_[stage];
}

void
TexUnit::csrWrite(uint32_t csrAddr, uint32_t value)
{
    uint32_t rel = csrAddr - Csr::CSR_TEX_BASE;
    uint32_t stage = rel / Csr::CSR_TEX_STRIDE;
    uint32_t field = rel % Csr::CSR_TEX_STRIDE;
    SamplerState& st = stageState(stage);
    switch (field) {
      case isa::TEX_STATE_ADDR: st.addr = value; break;
      case isa::TEX_STATE_MIPOFF: st.mipOff = value; break;
      case isa::TEX_STATE_WIDTH: st.widthLog2 = value; break;
      case isa::TEX_STATE_HEIGHT: st.heightLog2 = value; break;
      case isa::TEX_STATE_FORMAT:
        st.format = static_cast<Format>(value);
        break;
      case isa::TEX_STATE_WRAP:
        st.wrapU = static_cast<Wrap>(value & 0x3);
        st.wrapV = static_cast<Wrap>((value >> 2) & 0x3);
        break;
      case isa::TEX_STATE_FILTER:
        st.filter = static_cast<Filter>(value);
        break;
      case isa::TEX_STATE_LODS:
        st.numLods = std::max(1u, value);
        break;
      default:
        fatal("bad texture CSR field ", field);
    }
}

uint32_t
TexUnit::csrRead(uint32_t csrAddr) const
{
    uint32_t rel = csrAddr - Csr::CSR_TEX_BASE;
    uint32_t stage = rel / Csr::CSR_TEX_STRIDE;
    uint32_t field = rel % Csr::CSR_TEX_STRIDE;
    const SamplerState& st = stageState(stage);
    switch (field) {
      case isa::TEX_STATE_ADDR: return st.addr;
      case isa::TEX_STATE_MIPOFF: return st.mipOff;
      case isa::TEX_STATE_WIDTH: return st.widthLog2;
      case isa::TEX_STATE_HEIGHT: return st.heightLog2;
      case isa::TEX_STATE_FORMAT: return static_cast<uint32_t>(st.format);
      case isa::TEX_STATE_WRAP:
        return static_cast<uint32_t>(st.wrapU) |
               (static_cast<uint32_t>(st.wrapV) << 2);
      case isa::TEX_STATE_FILTER: return static_cast<uint32_t>(st.filter);
      case isa::TEX_STATE_LODS: return st.numLods;
      default:
        fatal("bad texture CSR field ", field);
    }
}

void
TexUnit::push(const TexRequest& req)
{
    input_.push(req);
    ++ctrRequests_;
}

void
TexUnit::push(TexRequest&& req)
{
    input_.push(std::move(req));
    ++ctrRequests_;
}

bool
TexUnit::cacheRsp(const mem::CoreRsp& rsp)
{
    if (!batch_)
        return false;
    auto it = batch_->pending.find(rsp.reqId);
    if (it == batch_->pending.end())
        return false;
    batch_->pending.erase(it);
    return true;
}

void
TexUnit::startBatch(Cycle now)
{
    const TexRequest req = input_.pop();
    Batch batch;
    batch.rsp.reqId = req.reqId;
    batch.rsp.tag = req.tag;
    batch.rsp.colors.assign(req.lanes.size(), 0);
    batch.startedAt = now;

    const SamplerState& st = stageState(req.stage);

    // Functional sampling for every active lane; collect texel addresses.
    std::vector<Addr>& addrs = addrScratch_;
    addrs.clear();
    for (size_t lane = 0; lane < req.lanes.size(); ++lane) {
        const TexLaneReq& lr = req.lanes[lane];
        if (!lr.active)
            continue;
        uint32_t lod = static_cast<uint32_t>(std::max(0.0f, lr.lod));
        SampleResult res = sample(ram_, st, lr.u, lr.v, lod);
        batch.rsp.colors[lane] = res.color.pack();
        addrs.insert(addrs.end(), res.texelAddrs.begin(),
                     res.texelAddrs.end());
        ctrTexelFetches_ += res.texelAddrs.size();
    }

    // De-duplicate texel addresses repeated across threads (Fig. 5 step 2).
    std::sort(addrs.begin(), addrs.end());
    addrs.erase(std::unique(addrs.begin(), addrs.end()), addrs.end());
    ctrUniqueTexels_ += addrs.size();
    batch.toIssue.assign(addrs.begin(), addrs.end());
    batch.issuedAll = batch.toIssue.empty();

    // Address generation latency before the first texel issue.
    batchReadyAt_ = now + config_.addrGenLatency;
    batch_ = std::move(batch);
}

void
TexUnit::tick(Cycle now)
{
    // Deliver filtered colors out of the sampler pipeline.
    while (auto rsp = samplerPipe_.dequeueReady(now)) {
        if (rspCallback_)
            rspCallback_(*rsp);
        ++ctrResponses_;
    }

    if (!batch_) {
        if (!input_.empty())
            startBatch(now);
        return;
    }

    if (now < batchReadyAt_)
        return;

    // Texel memory scheduler: issue unique addresses to the data cache.
    if (!batch_->issuedAll && dcache_) {
        for (uint32_t l = 0; l < config_.numCacheLanes &&
                             !batch_->toIssue.empty(); ++l) {
            uint32_t lane = config_.cacheLaneBase + l;
            if (!dcache_->laneReady(lane))
                continue;
            mem::CoreReq creq;
            creq.addr = batch_->toIssue.front();
            creq.write = false;
            creq.reqId = allocReqId_();
            creq.lane = lane;
            creq.tag = batch_->rsp.tag;
            batch_->pending.insert(creq.reqId);
            dcache_->lanePush(lane, creq);
            batch_->toIssue.pop_front();
        }
        if (batch_->toIssue.empty())
            batch_->issuedAll = true;
    }
    if (!dcache_) {
        // No cache attached (unit tests): texels return instantly.
        batch_->toIssue.clear();
        batch_->issuedAll = true;
        batch_->pending.clear();
    }

    // Only when all texels returned does the sampler start (and the
    // scheduler may begin servicing the next batch).
    if (batch_->issuedAll && batch_->pending.empty()) {
        ctrBatchCycles_ += now - batch_->startedAt;
        samplerPipe_.enqueue(std::move(batch_->rsp), now);
        batch_.reset();
    }
}

bool
TexUnit::idle() const
{
    return !batch_ && input_.empty() && samplerPipe_.empty();
}

} // namespace vortex::tex
