/**
 * @file
 * Functional texture sampler implementation.
 */

#include "tex/sampler.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace vortex::tex {

Addr
SamplerState::mipByteOffset(uint32_t lod) const
{
    Addr off = 0;
    uint32_t tsz = texelSize(format);
    for (uint32_t l = 0; l < lod; ++l)
        off += width(l) * height(l) * tsz;
    return off;
}

Addr
SamplerState::texelAddr(uint32_t lod, uint32_t x, uint32_t y) const
{
    uint32_t tsz = texelSize(format);
    return addr + mipOff + mipByteOffset(lod) +
           (y * width(lod) + x) * tsz;
}

int32_t
applyWrap(Wrap wrap, int32_t x, uint32_t size)
{
    const int32_t n = static_cast<int32_t>(size);
    switch (wrap) {
      case Wrap::Clamp:
        return std::clamp(x, 0, n - 1);
      case Wrap::Repeat: {
        int32_t m = x % n;
        return m < 0 ? m + n : m;
      }
      case Wrap::Mirror: {
        int32_t period = 2 * n;
        int32_t m = x % period;
        if (m < 0)
            m += period;
        return m < n ? m : period - 1 - m;
      }
    }
    panic("applyWrap: bad wrap mode");
}

Color
fetchTexel(const mem::Ram& ram, const SamplerState& st, uint32_t lod,
           int32_t x, int32_t y)
{
    uint32_t w = st.width(lod);
    uint32_t h = st.height(lod);
    uint32_t xi = static_cast<uint32_t>(applyWrap(st.wrapU, x, w));
    uint32_t yi = static_cast<uint32_t>(applyWrap(st.wrapV, y, h));
    Addr a = st.texelAddr(lod, xi, yi);
    uint32_t raw;
    switch (texelSize(st.format)) {
      case 1: raw = ram.read8(a); break;
      case 2: raw = ram.read16(a); break;
      default: raw = ram.read32(a); break;
    }
    return unpackTexel(st.format, raw);
}

Color
lerpColor(const Color& a, const Color& b, uint32_t frac8)
{
    auto lerp = [frac8](uint8_t x, uint8_t y) {
        return static_cast<uint8_t>(
            (static_cast<uint32_t>(x) * (256 - frac8) +
             static_cast<uint32_t>(y) * frac8) >> 8);
    };
    return {lerp(a.r, b.r), lerp(a.g, b.g), lerp(a.b, b.b),
            lerp(a.a, b.a)};
}

namespace {

/** Record the wrapped texel address for the traffic trace. */
void
recordAddr(SampleResult& out, const SamplerState& st, uint32_t lod,
           int32_t x, int32_t y)
{
    uint32_t xi = static_cast<uint32_t>(
        applyWrap(st.wrapU, x, st.width(lod)));
    uint32_t yi = static_cast<uint32_t>(
        applyWrap(st.wrapV, y, st.height(lod)));
    out.texelAddrs.push_back(st.texelAddr(lod, xi, yi));
}

/** Fixed-point coordinate split: integer texel index + 8-bit fraction.
 *  Matches the hardware address generator: scaled = u*size - 0.5. */
void
splitCoord(float u, uint32_t size, int32_t& x0, uint32_t& frac8)
{
    float scaled = u * static_cast<float>(size) - 0.5f;
    float fl = std::floor(scaled);
    x0 = static_cast<int32_t>(fl);
    frac8 = static_cast<uint32_t>((scaled - fl) * 256.0f) & 0xFF;
}

} // namespace

SampleResult
samplePoint(const mem::Ram& ram, const SamplerState& st, float u, float v,
            uint32_t lod)
{
    lod = std::min(lod, st.numLods - 1);
    uint32_t w = st.width(lod);
    uint32_t h = st.height(lod);
    int32_t x = static_cast<int32_t>(
        std::floor(u * static_cast<float>(w)));
    int32_t y = static_cast<int32_t>(
        std::floor(v * static_cast<float>(h)));
    SampleResult out;
    out.color = fetchTexel(ram, st, lod, x, y);
    recordAddr(out, st, lod, x, y);
    return out;
}

SampleResult
sampleBilinear(const mem::Ram& ram, const SamplerState& st, float u, float v,
               uint32_t lod)
{
    lod = std::min(lod, st.numLods - 1);
    uint32_t w = st.width(lod);
    uint32_t h = st.height(lod);
    int32_t x0, y0;
    uint32_t fx, fy;
    splitCoord(u, w, x0, fx);
    splitCoord(v, h, y0, fy);

    Color c00 = fetchTexel(ram, st, lod, x0, y0);
    Color c10 = fetchTexel(ram, st, lod, x0 + 1, y0);
    Color c01 = fetchTexel(ram, st, lod, x0, y0 + 1);
    Color c11 = fetchTexel(ram, st, lod, x0 + 1, y0 + 1);

    Color top = lerpColor(c00, c10, fx);
    Color bot = lerpColor(c01, c11, fx);

    SampleResult out;
    out.color = lerpColor(top, bot, fy);
    recordAddr(out, st, lod, x0, y0);
    recordAddr(out, st, lod, x0 + 1, y0);
    recordAddr(out, st, lod, x0, y0 + 1);
    recordAddr(out, st, lod, x0 + 1, y0 + 1);
    return out;
}

SampleResult
sample(const mem::Ram& ram, const SamplerState& st, float u, float v,
       uint32_t lod)
{
    // Point sampling shares the bilinear back-end with zero blend (§4.2.2);
    // functionally that is exactly a point sample, so dispatch directly.
    if (st.filter == Filter::Point)
        return samplePoint(ram, st, u, v, lod);
    return sampleBilinear(ram, st, u, v, lod);
}

SampleResult
sampleTrilinear(const mem::Ram& ram, const SamplerState& st, float u,
                float v, float lod)
{
    float l = std::max(lod, 0.0f);
    uint32_t l0 = static_cast<uint32_t>(l);
    uint32_t frac8 = static_cast<uint32_t>((l - std::floor(l)) * 256.0f) &
                     0xFF;
    SampleResult a = sampleBilinear(ram, st, u, v, l0);
    SampleResult b = sampleBilinear(ram, st, u, v, l0 + 1);
    SampleResult out;
    out.color = lerpColor(a.color, b.color, frac8);
    out.texelAddrs = std::move(a.texelAddrs);
    out.texelAddrs.insert(out.texelAddrs.end(), b.texelAddrs.begin(),
                          b.texelAddrs.end());
    return out;
}

} // namespace vortex::tex
