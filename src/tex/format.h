/**
 * @file
 * Texture texel formats and wrap/filter modes (paper §4.2: "the
 * implementation supports various texture formats and texture wrap modes as
 * defined by OpenGL"). The sampler unpacks every format to 8-bit RGBA before
 * filtering and packs the filtered result back to RGBA8, which is the
 * behaviour of the hardware texel sampler (§4.2.2: "performs a format
 * conversion and a two-cycle bilinear interpolation").
 */

#pragma once

#include <cstdint>

#include "common/log.h"

namespace vortex::tex {

/** Supported texel storage formats (OpenGL-ES subset). */
enum class Format : uint32_t
{
    RGBA8 = 0,  ///< 4 bytes/texel, R in byte 0
    BGRA8 = 1,  ///< 4 bytes/texel, B in byte 0 (GL_BGRA)
    RGB565 = 2, ///< 2 bytes/texel
    RGBA4 = 3,  ///< 2 bytes/texel
    L8 = 4,     ///< 1 byte/texel luminance
    A8 = 5,     ///< 1 byte/texel alpha
};

/** Texture coordinate wrap modes. */
enum class Wrap : uint32_t
{
    Clamp = 0,  ///< GL_CLAMP_TO_EDGE
    Repeat = 1, ///< GL_REPEAT
    Mirror = 2, ///< GL_MIRRORED_REPEAT
};

/** Filtering modes of the hardware unit (trilinear is a pseudo-instruction
 *  built from two bilinear lookups, Algorithm 1). */
enum class Filter : uint32_t
{
    Point = 0,
    Bilinear = 1,
};

/** An unpacked 8-bit RGBA color. */
struct Color
{
    uint8_t r = 0, g = 0, b = 0, a = 0;

    /** Packed RGBA little-endian word (r in byte 0). */
    uint32_t
    pack() const
    {
        return static_cast<uint32_t>(r) | (static_cast<uint32_t>(g) << 8) |
               (static_cast<uint32_t>(b) << 16) |
               (static_cast<uint32_t>(a) << 24);
    }

    static Color
    unpackRgba8(uint32_t v)
    {
        return {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                static_cast<uint8_t>(v >> 16), static_cast<uint8_t>(v >> 24)};
    }

    bool
    operator==(const Color& o) const
    {
        return r == o.r && g == o.g && b == o.b && a == o.a;
    }
};

/** Bytes per texel for @p format. */
constexpr uint32_t
texelSize(Format format)
{
    switch (format) {
      case Format::RGBA8:
      case Format::BGRA8:
        return 4;
      case Format::RGB565:
      case Format::RGBA4:
        return 2;
      case Format::L8:
      case Format::A8:
        return 1;
    }
    return 4;
}

/** Expand an n-bit channel value to 8 bits (replicating high bits). */
constexpr uint8_t
expandBits(uint32_t value, uint32_t from)
{
    switch (from) {
      case 4: return static_cast<uint8_t>((value << 4) | value);
      case 5: return static_cast<uint8_t>((value << 3) | (value >> 2));
      case 6: return static_cast<uint8_t>((value << 2) | (value >> 4));
      default: return static_cast<uint8_t>(value);
    }
}

/** Unpack a raw texel word (low texelSize bytes valid) to RGBA8. */
inline Color
unpackTexel(Format format, uint32_t raw)
{
    switch (format) {
      case Format::RGBA8:
        return Color::unpackRgba8(raw);
      case Format::BGRA8:
        return {static_cast<uint8_t>(raw >> 16), static_cast<uint8_t>(raw >> 8),
                static_cast<uint8_t>(raw), static_cast<uint8_t>(raw >> 24)};
      case Format::RGB565:
        return {expandBits((raw >> 11) & 0x1F, 5),
                expandBits((raw >> 5) & 0x3F, 6), expandBits(raw & 0x1F, 5),
                255};
      case Format::RGBA4:
        return {expandBits((raw >> 12) & 0xF, 4),
                expandBits((raw >> 8) & 0xF, 4),
                expandBits((raw >> 4) & 0xF, 4), expandBits(raw & 0xF, 4)};
      case Format::L8: {
        uint8_t l = static_cast<uint8_t>(raw);
        return {l, l, l, 255};
      }
      case Format::A8:
        return {0, 0, 0, static_cast<uint8_t>(raw)};
    }
    panic("unpackTexel: bad format");
}

/** Pack an RGBA8 color into the raw representation of @p format. */
inline uint32_t
packTexel(Format format, const Color& c)
{
    switch (format) {
      case Format::RGBA8:
        return c.pack();
      case Format::BGRA8:
        return static_cast<uint32_t>(c.b) | (static_cast<uint32_t>(c.g) << 8) |
               (static_cast<uint32_t>(c.r) << 16) |
               (static_cast<uint32_t>(c.a) << 24);
      case Format::RGB565:
        return ((c.r >> 3) << 11) | ((c.g >> 2) << 5) | (c.b >> 3);
      case Format::RGBA4:
        return ((c.r >> 4) << 12) | ((c.g >> 4) << 8) | ((c.b >> 4) << 4) |
               (c.a >> 4);
      case Format::L8:
        return c.r;
      case Format::A8:
        return c.a;
    }
    panic("packTexel: bad format");
}

} // namespace vortex::tex
