/**
 * @file
 * Cycle-level texture unit model (paper §4.2.2, Figure 5).
 *
 * Pipeline: (0) CSR state lookup, (1) texture address generation for all
 * threads in parallel, (2) de-duplication of texel addresses repeated across
 * threads, (3) texel memory scheduler issuing the unique addresses to the
 * data cache — the next batch is not serviced until every texel of the
 * current batch has returned — and (5) the two-cycle bilinear texel sampler
 * producing one filtered RGBA color per thread.
 *
 * Functionally the colors are computed up front via the shared sampler
 * (tex/sampler.h); the cycle model replays the same texel addresses against
 * the cache to produce the timing.
 */

#pragma once

#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/elastic.h"
#include "common/small_vec.h"
#include "common/stats.h"
#include "isa/csr.h"
#include "mem/cache.h"
#include "mem/ram.h"
#include "tex/sampler.h"

namespace vortex::tex {

/** Texture unit configuration. */
struct TexUnitConfig
{
    uint32_t numThreads = 4;    ///< lanes per request (== core threads)
    uint32_t inputDepth = 2;    ///< request queue depth
    uint32_t addrGenLatency = 1;
    uint32_t samplerLatency = 2; ///< the two-cycle bilinear sampler
    uint32_t cacheLaneBase = 0;  ///< first D$ lane owned by the unit
    uint32_t numCacheLanes = 4;  ///< D$ lanes available for texel fetches
};

/** Per-thread sample coordinates for one `tex` instruction. */
struct TexLaneReq
{
    bool active = false;
    float u = 0.0f;
    float v = 0.0f;
    float lod = 0.0f;
};

/** Per-lane request payload: inline up to 4 lanes (the baseline machine
 *  geometry), heap-spilled beyond — shared with core::ExecOut so the
 *  core hands its lanes to the unit without converting containers. */
using TexLaneVec = SmallVec<TexLaneReq, 4>;

/** Per-lane packed RGBA8 color payload of a completed request. */
using TexColorVec = SmallVec<uint32_t, 8>;

/** A `tex` instruction issued to the unit. */
struct TexRequest
{
    uint64_t reqId = 0;
    uint32_t stage = 0; ///< texture stage (CSR window index)
    Tag tag;
    TexLaneVec lanes;   ///< per-thread sample coordinates
};

/** Completed request: one packed RGBA8 color per thread. */
struct TexResponse
{
    uint64_t reqId = 0;
    Tag tag;
    TexColorVec colors; ///< one color per lane of the request
};

/** The texture unit. */
class TexUnit
{
  public:
    TexUnit(const TexUnitConfig& config, const mem::Ram& ram,
            mem::Cache* dcache,
            std::function<uint64_t()> allocReqId);

    /** CSR-backed state of texture stage @p stage. */
    SamplerState& stageState(uint32_t stage);
    const SamplerState& stageState(uint32_t stage) const;

    /** CSR write decoded into sampler state (paper Fig. 13). */
    void csrWrite(uint32_t csrAddr, uint32_t value);
    uint32_t csrRead(uint32_t csrAddr) const;

    bool ready() const { return !input_.full(); }
    void push(const TexRequest& req);
    /** Move-push: the lane payload transfers without a copy. */
    void push(TexRequest&& req);
    void setRspCallback(std::function<void(const TexResponse&)> cb)
    {
        rspCallback_ = std::move(cb);
    }

    /** Route a cache response; @return true if this unit owned the reqId. */
    bool cacheRsp(const mem::CoreRsp& rsp);

    void tick(Cycle now);
    bool idle() const;

    StatGroup& stats() { return stats_; }
    const StatGroup& stats() const { return stats_; }

  private:
    void startBatch(Cycle now);

    TexUnitConfig config_;
    const mem::Ram& ram_;
    mem::Cache* dcache_;
    std::function<uint64_t()> allocReqId_;

    std::vector<SamplerState> stages_;

    ElasticQueue<TexRequest> input_;

    /** In-flight batch state. */
    struct Batch
    {
        TexResponse rsp;
        std::deque<Addr> toIssue;              ///< unique texel addresses
        std::unordered_set<uint64_t> pending;  ///< outstanding cache reqIds
        Cycle startedAt = 0;
        bool issuedAll = false;
    };
    std::optional<Batch> batch_;
    Cycle batchReadyAt_ = 0; ///< models the address-generation latency
    std::vector<Addr> addrScratch_; ///< texel-dedup scratch (reused)

    LatencyPipe<TexResponse> samplerPipe_;
    std::function<void(const TexResponse&)> rspCallback_;
    StatGroup stats_{"texunit"};

    // Hot-path counter handles (lazy CounterRef: byte-identical output).
    CounterRef ctrRequests_{stats_, "requests"};
    CounterRef ctrTexelFetches_{stats_, "texel_fetches"};
    CounterRef ctrUniqueTexels_{stats_, "unique_texels"};
    CounterRef ctrResponses_{stats_, "responses"};
    CounterRef ctrBatchCycles_{stats_, "batch_cycles"};
};

} // namespace vortex::tex
