/**
 * @file
 * Functional texture sampler shared by the hardware texture-unit model and
 * the host-side graphics library (code reuse guarantees the cycle model and
 * the software renderer produce bit-identical texels).
 *
 * The filtering math mirrors the hardware datapath: texel coordinates are
 * converted to fixed point with an 8-bit blend fraction and the bilinear
 * interpolation is an integer lerp per channel. Point sampling runs through
 * the bilinear path with blend values of zero, exactly as the paper's
 * sampler does (§4.2.2).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/ram.h"
#include "tex/format.h"

namespace vortex::tex {

/** CSR-backed per-stage texture state (paper Fig. 13 lines 3-9). */
struct SamplerState
{
    Addr addr = 0;        ///< base address of mip level 0
    Addr mipOff = 0;      ///< extra byte offset applied to `addr`
    uint32_t widthLog2 = 0;
    uint32_t heightLog2 = 0;
    Format format = Format::RGBA8;
    Wrap wrapU = Wrap::Clamp;
    Wrap wrapV = Wrap::Clamp;
    Filter filter = Filter::Point;
    uint32_t numLods = 1; ///< mip levels present (contiguous chain)

    uint32_t width(uint32_t lod = 0) const
    {
        uint32_t w = 1u << widthLog2;
        return (w >> lod) ? (w >> lod) : 1u;
    }
    uint32_t height(uint32_t lod = 0) const
    {
        uint32_t h = 1u << heightLog2;
        return (h >> lod) ? (h >> lod) : 1u;
    }

    /** Byte offset of mip level @p lod within the contiguous chain. */
    Addr mipByteOffset(uint32_t lod) const;

    /** Byte address of texel (x, y) of level @p lod. */
    Addr texelAddr(uint32_t lod, uint32_t x, uint32_t y) const;
};

/** Result of one sample: the color and the texel addresses it touched
 *  (the addresses drive the cycle model's memory traffic). */
struct SampleResult
{
    Color color;
    std::vector<Addr> texelAddrs;
};

/** Apply a wrap mode to integer texel coordinate @p x for extent @p size. */
int32_t applyWrap(Wrap wrap, int32_t x, uint32_t size);

/** Read and unpack one texel. */
Color fetchTexel(const mem::Ram& ram, const SamplerState& st, uint32_t lod,
                 int32_t x, int32_t y);

/**
 * Sample with the state's filter at normalized (u, v) and integer mip level
 * @p lod (clamped to the available chain).
 */
SampleResult sample(const mem::Ram& ram, const SamplerState& st, float u,
                    float v, uint32_t lod);

/** Point sample regardless of the state's filter. */
SampleResult samplePoint(const mem::Ram& ram, const SamplerState& st,
                         float u, float v, uint32_t lod);

/** Bilinear sample regardless of the state's filter. */
SampleResult sampleBilinear(const mem::Ram& ram, const SamplerState& st,
                            float u, float v, uint32_t lod);

/**
 * Trilinear filtering as the pseudo-instruction of Algorithm 1: two bilinear
 * lookups on adjacent mip levels blended by the fractional LOD.
 */
SampleResult sampleTrilinear(const mem::Ram& ram, const SamplerState& st,
                             float u, float v, float lod);

/** The hardware's integer lerp: a + (b - a) * frac/256, per channel. */
Color lerpColor(const Color& a, const Color& b, uint32_t frac8);

} // namespace vortex::tex
