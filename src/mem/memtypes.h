/**
 * @file
 * Request/response types shared by the memory hierarchy.
 *
 * The simulator keeps a functional/timing split (DESIGN.md §4.2): data values
 * are computed functionally at execute time, so cache traffic carries only
 * addresses, access types, and elastic trace tags. A response completes the
 * instruction that issued the request (matched by reqId).
 */

#pragma once

#include <cstdint>

#include "common/elastic.h"
#include "common/types.h"

namespace vortex::mem {

/** A single-word core-side request (one LSU lane). */
struct CoreReq
{
    Addr addr = 0;
    bool write = false;
    uint64_t reqId = 0; ///< unique id used to match the response
    uint32_t lane = 0;  ///< issuing lane; echoed in the response
    Tag tag;            ///< elastic trace tag (PC + wavefront id)
};

/** Core-side response. */
struct CoreRsp
{
    uint64_t reqId = 0;
    uint32_t lane = 0;
    bool write = false; ///< completion of a store (no data); cache-to-cache
                        ///< links drop these, the LSU consumes them
    Tag tag;
};

/** A memory-side (line granular) request. */
struct MemReq
{
    Addr lineAddr = 0; ///< aligned to the line size
    bool write = false;
    uint64_t reqId = 0;
    Tag tag;
};

/** Memory-side response (only reads produce responses). */
struct MemRsp
{
    uint64_t reqId = 0;
    Tag tag;
};

/**
 * Downstream interface exposed by anything that accepts line requests
 * (MemSim, or the mem-side of a larger cache). Responses are delivered via a
 * callback registered by the single upstream client.
 */
class MemSink
{
  public:
    virtual ~MemSink() = default;

    /** May a request be pushed this cycle? */
    virtual bool reqReady() const = 0;

    /** Push a request; caller must have checked reqReady(). */
    virtual void reqPush(const MemReq& req) = 0;
};

} // namespace vortex::mem
