/**
 * @file
 * Response-routing fan-in: lets several caches share one downstream MemSink
 * (the board memory or a shared cache level) and routes read responses back
 * to the issuing client. Requires globally unique memory reqIds, which
 * Cache instances guarantee by embedding an instance id in their request
 * ids.
 */

#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "mem/memtypes.h"

namespace vortex::mem {

/** N-client fan-in to a single MemSink with reqId-based response routing. */
class MemRouter
{
  public:
    explicit MemRouter(MemSink* down) : down_(down) {}

    /** Create a port whose read responses are delivered to @p handler. */
    MemSink*
    makePort(std::function<void(const MemRsp&)> handler)
    {
        handlers_.push_back(std::move(handler));
        ports_.push_back(
            std::make_unique<Port>(*this, handlers_.size() - 1));
        return ports_.back().get();
    }

    /** Hook this to the downstream's response callback. */
    void
    onRsp(const MemRsp& rsp)
    {
        auto it = routes_.find(rsp.reqId);
        if (it == routes_.end())
            panic("MemRouter: unrouted response ", rsp.reqId);
        size_t idx = it->second;
        routes_.erase(it);
        handlers_[idx](rsp);
    }

    bool idle() const { return routes_.empty(); }

  private:
    class Port : public MemSink
    {
      public:
        Port(MemRouter& router, size_t index)
            : router_(router), index_(index)
        {
        }

        bool reqReady() const override { return router_.down_->reqReady(); }

        void
        reqPush(const MemReq& req) override
        {
            if (!req.write)
                router_.routes_[req.reqId] = index_;
            router_.down_->reqPush(req);
        }

      private:
        MemRouter& router_;
        size_t index_;
    };

    MemSink* down_;
    std::vector<std::unique_ptr<Port>> ports_;
    std::vector<std::function<void(const MemRsp&)>> handlers_;
    std::unordered_map<uint64_t, size_t> routes_;
};

} // namespace vortex::mem
