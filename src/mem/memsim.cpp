/**
 * @file
 * Memory simulator implementation.
 */

#include "mem/memsim.h"

#include <algorithm>

#include "common/bitmanip.h"
#include "common/log.h"

namespace vortex::mem {

MemSim::MemSim(const MemSimConfig& config)
    : config_(config),
      lineCycles_(std::max(1u, config.lineSize / std::max(1u,
                                                          config.busWidth))),
      input_(config.queueDepth, "memsim.input"),
      channelFree_(config.numChannels, 0)
{
    if (config.numChannels == 0)
        fatal("MemSim: numChannels must be >= 1");
    if (!isPow2(config.numChannels))
        fatal("MemSim: numChannels must be a power of two");
    if (!isPow2(config.lineSize))
        fatal("MemSim: lineSize must be a power of two");
}

uint32_t
MemSim::channelOf(Addr lineAddr) const
{
    return (lineAddr / config_.lineSize) & (config_.numChannels - 1);
}

void
MemSim::tick(Cycle now)
{
    // Accept new transfers onto free channels. Head-of-line blocking per the
    // single input queue is intentional: the board controller has one
    // request port (CCI-P style).
    while (!input_.empty()) {
        const MemReq& req = input_.front();
        uint32_t ch = channelOf(req.lineAddr);
        if (channelFree_[ch] > now)
            break;
        channelFree_[ch] = now + lineCycles_;
        ++(req.write ? ctrWrites_ : ctrReads_);
        ctrBytes_ += config_.lineSize;
        if (!req.write) {
            inflight_.push_back({MemRsp{req.reqId, req.tag},
                                 now + config_.latency + lineCycles_});
        }
        input_.pop();
    }

    // Deliver matured responses (kept sorted by construction: latency is
    // constant, so readyAt values are non-decreasing).
    size_t delivered = 0;
    for (const Inflight& f : inflight_) {
        if (f.readyAt > now)
            break;
        if (rspCallback_)
            rspCallback_(f.rsp);
        ++ctrResponses_;
        ++delivered;
    }
    if (delivered)
        inflight_.erase(inflight_.begin(),
                        inflight_.begin() + static_cast<long>(delivered));
}

} // namespace vortex::mem
