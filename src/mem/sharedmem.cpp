/**
 * @file
 * Shared-memory scratchpad implementation.
 */

#include "mem/sharedmem.h"

#include <algorithm>

#include "common/bitmanip.h"
#include "common/log.h"

namespace vortex::mem {

SharedMem::SharedMem(const SharedMemConfig& config)
    : config_(config), pipe_(config.latency), bankBusy_(config.numBanks, 0)
{
    if (!isPow2(config.numBanks))
        fatal("SharedMem: numBanks must be a power of two");
    lanes_.reserve(config.numLanes);
    for (uint32_t l = 0; l < config.numLanes; ++l)
        lanes_.emplace_back(config.laneQueueDepth, "sharedmem.lane");
}

void
SharedMem::lanePush(uint32_t lane, const CoreReq& req)
{
    lanes_.at(lane).push(req);
    ++pendingLaneReqs_;
    ++(req.write ? ctrWrites_ : ctrReads_);
}

void
SharedMem::tick(Cycle now)
{
    // Emit matured responses.
    while (auto rsp = pipe_.dequeueReady(now)) {
        if (rspCallback_)
            rspCallback_(*rsp);
    }

    // Arbitrate: each bank services at most one lane per cycle. Skip
    // the lane scan entirely on the (common) cycles with nothing queued.
    if (pendingLaneReqs_ == 0)
        return;
    std::fill(bankBusy_.begin(), bankBusy_.end(), 0);
    for (auto& lane : lanes_) {
        if (lane.empty())
            continue;
        const CoreReq& req = lane.front();
        uint32_t b = bankOf(req.addr);
        ++ctrCandidates_;
        if (bankBusy_[b]) {
            ++ctrBankConflicts_;
            continue;
        }
        bankBusy_[b] = 1;
        pipe_.enqueue(CoreRsp{req.reqId, req.lane, req.write, req.tag}, now);
        ++ctrAccesses_;
        lane.pop();
        --pendingLaneReqs_;
    }
}

bool
SharedMem::idle() const
{
    if (!pipe_.empty())
        return false;
    for (const auto& lane : lanes_) {
        if (!lane.empty())
            return false;
    }
    return true;
}

} // namespace vortex::mem
