/**
 * @file
 * Shared-memory scratchpad implementation.
 */

#include "mem/sharedmem.h"

#include "common/bitmanip.h"
#include "common/log.h"

namespace vortex::mem {

SharedMem::SharedMem(const SharedMemConfig& config)
    : config_(config), pipe_(config.latency)
{
    if (!isPow2(config.numBanks))
        fatal("SharedMem: numBanks must be a power of two");
    lanes_.reserve(config.numLanes);
    for (uint32_t l = 0; l < config.numLanes; ++l)
        lanes_.emplace_back(config.laneQueueDepth, "sharedmem.lane");
}

void
SharedMem::lanePush(uint32_t lane, const CoreReq& req)
{
    lanes_.at(lane).push(req);
    ++stats_.counter(req.write ? "writes" : "reads");
}

void
SharedMem::tick(Cycle now)
{
    // Emit matured responses.
    while (auto rsp = pipe_.dequeueReady(now)) {
        if (rspCallback_)
            rspCallback_(*rsp);
    }

    // Arbitrate: each bank services at most one lane per cycle.
    std::vector<bool> bank_busy(config_.numBanks, false);
    for (auto& lane : lanes_) {
        if (lane.empty())
            continue;
        const CoreReq& req = lane.front();
        uint32_t b = bankOf(req.addr);
        ++stats_.counter("candidates");
        if (bank_busy[b]) {
            ++stats_.counter("bank_conflicts");
            continue;
        }
        bank_busy[b] = true;
        pipe_.enqueue(CoreRsp{req.reqId, req.lane, req.write, req.tag}, now);
        ++stats_.counter("accesses");
        lane.pop();
    }
}

bool
SharedMem::idle() const
{
    if (!pipe_.empty())
        return false;
    for (const auto& lane : lanes_) {
        if (!lane.empty())
            return false;
    }
    return true;
}

} // namespace vortex::mem
