/**
 * @file
 * High-bandwidth non-blocking cache (paper §4.3, Figure 6).
 *
 * The cache is multi-banked (single-ported banks, address-interleaved by
 * cache-line index) and extends multi-banking with *virtual ports*: the
 * front-end bank selector coalesces same-cycle requests that map to the same
 * bank AND the same cache line into one bank request carrying up to
 * `numPorts` word-granular port slots. Only the word offsets of the ports
 * need storing (in the MSHR on a miss), and a single data-store access
 * services all ports of a request — the two efficiency points of §4.3.
 *
 * Each bank runs a four-stage pipeline (schedule -> tag -> data -> response)
 * with its own MSHR (per-bank MSHRs adapted from Asiatici & Ienne). Misses to
 * a line already pending merge into the existing MSHR entry without issuing
 * a new memory request. The scheduler prioritizes MSHR replays over memory
 * fills over incoming core requests. Deadlock is avoided with early-full
 * checks: a request is only scheduled when the MSHR has a free entry and the
 * memory request queue has space (paper's two deadlock mitigations).
 *
 * Back-end: responses from banks are delivered through a single response
 * callback (the "bank merger" coalesces by request tag — here the reqId).
 *
 * Policy: write-through, no write-allocate (stores complete when accepted by
 * a bank and forward a line write to memory), which matches the FPGA design
 * and makes `flush` (weakly-coherent memory, §4.1.4) a tag invalidation.
 */

#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/elastic.h"
#include "common/small_vec.h"
#include "common/slot_pool.h"
#include "common/stats.h"
#include "mem/memtypes.h"

namespace vortex::mem {

/** Geometry and timing of one cache instance. */
struct CacheConfig
{
    const char* name = "cache";
    uint32_t size = 16384;        ///< total bytes
    uint32_t lineSize = 64;       ///< bytes
    uint32_t numBanks = 4;
    uint32_t numWays = 2;
    uint32_t numPorts = 1;        ///< virtual ports per bank
    uint32_t numLanes = 4;        ///< core-side request lanes
    uint32_t mshrEntries = 8;     ///< entries per bank
    uint32_t inputQueueDepth = 2; ///< per-bank input FIFO depth
    uint32_t laneQueueDepth = 2;  ///< per-lane front queue depth
    uint32_t memQueueDepth = 8;   ///< memory request queue depth
    uint32_t pipelineLatency = 3; ///< schedule->response latency (cycles)
};

/**
 * The non-blocking banked cache. One instance per L1D/L1I/L2/L3; levels are
 * composed via CacheMemPort adapters.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig& config);

    //
    // Core side (lane-granular).
    //
    bool laneReady(uint32_t lane) const;
    void lanePush(uint32_t lane, const CoreReq& req);
    void setRspCallback(std::function<void(const CoreRsp&)> cb)
    {
        rspCallback_ = std::move(cb);
    }

    //
    // Memory side.
    //
    void connectMem(MemSink* sink) { memSink_ = sink; }
    /** Deliver a response from the downstream memory (always accepted). */
    void memRsp(const MemRsp& rsp);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** True when no request is buffered, pending, or in flight. */
    bool idle() const;

    /** Invalidate every line (write-through: no data loss). */
    void flushAll();

    const CacheConfig& config() const { return config_; }
    StatGroup& stats() { return stats_; }
    const StatGroup& stats() const { return stats_; }

    /** Bank utilization in [0,1] per Fig. 19: the fraction of issued lane
     *  requests that did not experience a bank conflict. */
    double bankUtilization() const;

  private:
    //
    // Geometry helpers.
    //
    Addr lineAddrOf(Addr addr) const { return addr & ~(config_.lineSize - 1); }
    uint32_t bankOf(Addr addr) const;
    uint32_t setOf(Addr addr) const;
    uint32_t tagOf(Addr addr) const;

    /** One virtual-port slot inside a bank request. */
    struct PortReq
    {
        uint64_t reqId = 0;
        uint32_t lane = 0;
        Tag tag;
    };

    /** Port list sized for the swept virtual-port counts (1/2/4); MSHR
     *  merges may spill past the inline capacity. */
    using PortVec = SmallVec<PortReq, 4>;

    /** A coalesced request entering a bank. */
    struct BankReq
    {
        Addr lineAddr = 0;
        bool write = false;
        PortVec ports;
    };

    /** A miss waiting on a line (one MSHR entry). */
    struct MshrEntry
    {
        Addr lineAddr = 0;
        bool pendingFill = true;       ///< false once moved to replay
        PortVec ports;
    };

    /** Tag-store way. */
    struct Way
    {
        bool valid = false;
        uint32_t tag = 0;
        Cycle lastUsed = 0;
    };

    /** Completed bank operation travelling the pipeline. */
    struct PipeOp
    {
        PortVec ports; ///< responses to emit
        bool write = false;
        std::optional<MemReq> memReq;
    };

    struct Bank
    {
        Bank(const CacheConfig& cfg, uint32_t index);

        ElasticQueue<BankReq> input;
        std::deque<MshrEntry> replayQueue; ///< filled entries to replay
        std::deque<Addr> fillQueue;        ///< arrived fills to install
        std::vector<MshrEntry> mshr;
        std::vector<std::vector<Way>> sets; ///< [set][way]
        LatencyPipe<PipeOp> pipe;
    };

    /** Probe the tag store; returns way index on hit. */
    std::optional<uint32_t> probe(Bank& bank, Addr addr) const;
    /** Install a line, evicting LRU; updates stats. */
    void install(Bank& bank, Addr addr, Cycle now);

    void drainPipes(Cycle now);
    void drainMemQueue();
    void schedule(Cycle now);
    void selectBanks(Cycle now);

    bool mshrHasSpace(const Bank& bank) const;
    MshrEntry* mshrFind(Bank& bank, Addr lineAddr);

    CacheConfig config_;
    uint32_t numSets_;
    std::vector<Bank> banks_;
    std::vector<ElasticQueue<CoreReq>> lanes_;
    //
    // Tick-phase early-out bookkeeping: counts of work queued for the
    // three per-cycle bank scans, so an idle (or stalled-elsewhere)
    // cache pays three compares per cycle instead of three bank walks.
    //
    size_t pendingLaneReqs_ = 0; ///< queued lane reqs (selector early-out)
    size_t bankWork_ = 0; ///< bank input + replay + fill entries (schedule)
    size_t pipeWork_ = 0; ///< ops inside bank pipelines (drainPipes)
    ElasticQueue<MemReq> memQueue_;
    std::deque<MemRsp> memRspQueue_; ///< unbounded: responses always absorbed
    MemSink* memSink_ = nullptr;
    std::function<void(const CoreRsp&)> rspCallback_;

    size_t pipePromisedMemReqs_ = 0; ///< memq slots reserved by in-pipe ops

    //
    // Memory-side request ids. Read ids come from the fill slot pool
    // (so the response handler is an array index, not a map probe);
    // write ids — never tracked, writes produce no routed response —
    // come from a plain counter with a marker bit. Both embed this
    // instance's id above bit 40, keeping ids globally unique for the
    // response-routing fan-in (mem/router.h).
    //
    struct PendingFill
    {
        uint32_t bank = 0;
        Addr lineAddr = 0;
    };
    uint64_t instanceBase_;          ///< unique per-cache high bits
    uint64_t nextWriteReqId_ = 1;    ///< write (untracked) id counter
    SlotPool<PendingFill> fillPool_; ///< in-flight read fills by reqId

    StatGroup stats_;

    //
    // Hot-path counter handles (see CounterRef in common/stats.h):
    // resolved lazily on first bump so the flattened key order stays
    // byte-identical to the string-keyed paths they replace.
    //
    CounterRef ctrCoreReads_;
    CounterRef ctrCoreWrites_;
    CounterRef ctrCoreRsps_;
    CounterRef ctrMemReqs_;
    CounterRef ctrMshrReplays_;
    CounterRef ctrFills_;
    CounterRef ctrMemqStalls_;
    CounterRef ctrWriteHits_;
    CounterRef ctrWriteMisses_;
    CounterRef ctrReadHits_;
    CounterRef ctrReadMisses_;
    CounterRef ctrMshrMerges_;
    CounterRef ctrMshrStalls_;
    CounterRef ctrEvictions_;
    CounterRef ctrSelCandidates_;
    CounterRef ctrSelInputFull_;
    CounterRef ctrSelAccepted_;
    CounterRef ctrSelConflicts_;
};

/**
 * Adapter presenting one lane of a (larger) cache as a MemSink, so an L1's
 * memory side can plug into an L2, and an L2 into an L3 or MemSim.
 */
class CacheMemPort : public MemSink
{
  public:
    CacheMemPort(Cache& cache, uint32_t lane) : cache_(cache), lane_(lane) {}

    bool reqReady() const override { return cache_.laneReady(lane_); }

    void
    reqPush(const MemReq& req) override
    {
        CoreReq creq;
        creq.addr = req.lineAddr;
        creq.write = req.write;
        creq.reqId = req.reqId;
        creq.lane = lane_;
        creq.tag = req.tag;
        cache_.lanePush(lane_, creq);
    }

  private:
    Cache& cache_;
    uint32_t lane_;
};

} // namespace vortex::mem
