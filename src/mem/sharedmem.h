/**
 * @file
 * Shared-memory scratchpad (paper §4.1.4): an optional per-core local memory
 * that can act as scratchpad or stack. Word-interleaved banks, one access
 * per bank per cycle; conflicting lane requests serialize. Accesses never
 * miss, so the model is a banked arbiter with fixed latency.
 */

#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "common/elastic.h"
#include "common/stats.h"
#include "mem/memtypes.h"

namespace vortex::mem {

/** Geometry of the shared memory. */
struct SharedMemConfig
{
    uint32_t size = 16384;  ///< bytes (scratchpad capacity)
    uint32_t numBanks = 4;  ///< word-interleaved banks
    uint32_t numLanes = 4;  ///< core-side lanes (== threads)
    uint32_t latency = 1;   ///< access latency in cycles
    uint32_t laneQueueDepth = 2;
};

/** Banked scratchpad timing model. */
class SharedMem
{
  public:
    explicit SharedMem(const SharedMemConfig& config);

    bool laneReady(uint32_t lane) const { return !lanes_.at(lane).full(); }
    void lanePush(uint32_t lane, const CoreReq& req);
    void setRspCallback(std::function<void(const CoreRsp&)> cb)
    {
        rspCallback_ = std::move(cb);
    }

    void tick(Cycle now);
    bool idle() const;

    StatGroup& stats() { return stats_; }
    const StatGroup& stats() const { return stats_; }

  private:
    uint32_t bankOf(Addr addr) const
    {
        return (addr >> 2) & (config_.numBanks - 1);
    }

    SharedMemConfig config_;
    std::vector<ElasticQueue<CoreReq>> lanes_;
    LatencyPipe<CoreRsp> pipe_;
    std::function<void(const CoreRsp&)> rspCallback_;
    std::vector<uint8_t> bankBusy_; ///< per-tick arbiter scratch (no alloc)
    size_t pendingLaneReqs_ = 0; ///< queued lane requests (tick early-out)
    StatGroup stats_{"sharedmem"};

    // Hot-path counter handles (lazy CounterRef: byte-identical output).
    CounterRef ctrReads_{stats_, "reads"};
    CounterRef ctrWrites_{stats_, "writes"};
    CounterRef ctrCandidates_{stats_, "candidates"};
    CounterRef ctrBankConflicts_{stats_, "bank_conflicts"};
    CounterRef ctrAccesses_{stats_, "accesses"};
};

} // namespace vortex::mem
