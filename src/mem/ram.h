/**
 * @file
 * Functional backing store: a sparse paged model of the device-local memory
 * (the FPGA board DRAM of the paper). All functional loads/stores and the
 * host-side driver copies go through this object; the timing models only
 * carry addresses.
 *
 * Thread safety: the page table is a flat array of atomic page pointers so
 * the parallel tick engine's workers can access memory concurrently, and
 * the scalar load/store paths use relaxed atomic byte/word accesses (plain
 * moves on mainstream hardware). Accesses to distinct addresses are fully
 * race-free; same-address conflicts from different cores in the same cycle
 * are *program-level* races with unspecified ordering — exactly the real
 * device's weakly-coherent memory model — but remain defined behavior
 * here. The bulk block helpers are host-driver paths (device idle) and use
 * plain memcpy.
 */

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace vortex::mem {

/** Sparse RAM covering the full 32-bit physical space (64 KiB pages). */
class Ram
{
  public:
    static constexpr uint32_t kPageBits = 16;
    static constexpr uint32_t kPageSize = 1u << kPageBits;
    static constexpr uint32_t kNumPages = 1u << (32 - kPageBits);

    Ram() : pages_(kNumPages), codePages_(kNumPages) {}
    ~Ram() { clear(); }

    Ram(const Ram&) = delete;
    Ram& operator=(const Ram&) = delete;

    uint8_t read8(Addr addr) const;
    uint16_t read16(Addr addr) const;
    uint32_t read32(Addr addr) const;
    float readFloat(Addr addr) const;

    void write8(Addr addr, uint8_t value);
    void write16(Addr addr, uint16_t value);
    void write32(Addr addr, uint32_t value);
    void writeFloat(Addr addr, float value);

    /** Bulk copy helpers used by the simulated PCIe driver. */
    void writeBlock(Addr addr, const void* src, size_t size);
    void readBlock(Addr addr, void* dst, size_t size) const;

    //
    // Code-page write tracking (decode-cache invalidation hook).
    //
    // A core's decoded-instruction cache assumes code is not
    // self-modifying. That assumption is *checked*, not silent: the core
    // marks every page it decodes from, any store that lands on a marked
    // page bumps the global code-write epoch, and the decode cache
    // flushes itself whenever the epoch moved (see core/decode_cache.h).
    // Unmarked pages — the overwhelming store traffic — cost one relaxed
    // flag load per store.
    //

    /** Mark the page containing @p addr as holding decoded code. */
    void
    markCodePage(Addr addr)
    {
        codePages_[addr >> kPageBits].store(1, std::memory_order_relaxed);
    }

    /** Monotonic count of stores that hit a marked code page. */
    uint64_t
    codeWriteEpoch() const
    {
        return codeWriteEpoch_.load(std::memory_order_relaxed);
    }

    /** Zero everything (drop all pages). Not safe during simulation. */
    void
    clear()
    {
        for (auto& slot : pages_) {
            delete[] slot.load(std::memory_order_relaxed);
            slot.store(nullptr, std::memory_order_relaxed);
        }
        for (auto& flag : codePages_)
            flag.store(0, std::memory_order_relaxed);
        codeWriteEpoch_.fetch_add(1, std::memory_order_relaxed);
        numPages_.store(0, std::memory_order_relaxed);
    }

    /** Number of touched pages (for tests). */
    size_t numPages() const
    {
        return numPages_.load(std::memory_order_relaxed);
    }

  private:
    /** Get the page backing @p addr, allocating (zeroed) on first touch. */
    uint8_t*
    page(Addr addr)
    {
        auto& slot = pages_[addr >> kPageBits];
        if (uint8_t* p = slot.load(std::memory_order_acquire))
            return p;
        std::lock_guard<std::mutex> lock(allocMutex_);
        uint8_t* p = slot.load(std::memory_order_relaxed);
        if (!p) {
            p = new uint8_t[kPageSize]();
            slot.store(p, std::memory_order_release);
            numPages_.fetch_add(1, std::memory_order_relaxed);
        }
        return p;
    }

    const uint8_t*
    pageIfPresent(Addr addr) const
    {
        return pages_[addr >> kPageBits].load(std::memory_order_acquire);
    }

    //
    // Relaxed atomic scalar accesses (compile to plain loads/stores on
    // x86/ARM) keeping simulated-program races defined at the host level.
    //
    static uint8_t
    loadByte(const uint8_t* p)
    {
#if defined(__GNUC__) || defined(__clang__)
        return __atomic_load_n(p, __ATOMIC_RELAXED);
#else
        return std::atomic_ref<uint8_t>(*const_cast<uint8_t*>(p))
            .load(std::memory_order_relaxed);
#endif
    }

    static void
    storeByte(uint8_t* p, uint8_t v)
    {
#if defined(__GNUC__) || defined(__clang__)
        __atomic_store_n(p, v, __ATOMIC_RELAXED);
#else
        std::atomic_ref<uint8_t>(*p).store(v, std::memory_order_relaxed);
#endif
    }

    /** @p p must be 4-byte aligned. */
    static uint32_t
    loadWord(const uint8_t* p)
    {
#if defined(__GNUC__) || defined(__clang__)
        return __atomic_load_n(reinterpret_cast<const uint32_t*>(p),
                               __ATOMIC_RELAXED);
#else
        return std::atomic_ref<uint32_t>(
                   *reinterpret_cast<uint32_t*>(const_cast<uint8_t*>(p)))
            .load(std::memory_order_relaxed);
#endif
    }

    /** @p p must be 4-byte aligned. */
    static void
    storeWord(uint8_t* p, uint32_t v)
    {
#if defined(__GNUC__) || defined(__clang__)
        __atomic_store_n(reinterpret_cast<uint32_t*>(p), v,
                         __ATOMIC_RELAXED);
#else
        std::atomic_ref<uint32_t>(*reinterpret_cast<uint32_t*>(p))
            .store(v, std::memory_order_relaxed);
#endif
    }

    /** Bump the code-write epoch when @p addr lies on a marked page. */
    void
    noteWrite(Addr addr)
    {
        if (codePages_[addr >> kPageBits].load(std::memory_order_relaxed))
            codeWriteEpoch_.fetch_add(1, std::memory_order_relaxed);
    }

    std::vector<std::atomic<uint8_t*>> pages_;
    std::vector<std::atomic<uint8_t>> codePages_; ///< decoded-from flags
    std::atomic<uint64_t> codeWriteEpoch_{0};
    std::mutex allocMutex_;
    std::atomic<size_t> numPages_{0};
};

inline uint8_t
Ram::read8(Addr addr) const
{
    const uint8_t* p = pageIfPresent(addr);
    return p ? loadByte(p + (addr & (kPageSize - 1))) : 0;
}

inline void
Ram::write8(Addr addr, uint8_t value)
{
    noteWrite(addr);
    storeByte(page(addr) + (addr & (kPageSize - 1)), value);
}

inline uint16_t
Ram::read16(Addr addr) const
{
    return static_cast<uint16_t>(read8(addr)) |
           (static_cast<uint16_t>(read8(addr + 1)) << 8);
}

inline uint32_t
Ram::read32(Addr addr) const
{
    // Fast path: aligned, so a single atomic word access suffices.
    if ((addr & 3) == 0) {
        if (const uint8_t* p = pageIfPresent(addr))
            return loadWord(p + (addr & (kPageSize - 1)));
        return 0;
    }
    return static_cast<uint32_t>(read16(addr)) |
           (static_cast<uint32_t>(read16(addr + 2)) << 16);
}

inline void
Ram::write16(Addr addr, uint16_t value)
{
    write8(addr, value & 0xFF);
    write8(addr + 1, value >> 8);
}

inline void
Ram::write32(Addr addr, uint32_t value)
{
    if ((addr & 3) == 0) {
        noteWrite(addr);
        storeWord(page(addr) + (addr & (kPageSize - 1)), value);
        return;
    }
    write16(addr, value & 0xFFFF);
    write16(addr + 2, value >> 16);
}

inline float
Ram::readFloat(Addr addr) const
{
    uint32_t u = read32(addr);
    float f;
    std::memcpy(&f, &u, 4);
    return f;
}

inline void
Ram::writeFloat(Addr addr, float value)
{
    uint32_t u;
    std::memcpy(&u, &value, 4);
    write32(addr, u);
}

inline void
Ram::writeBlock(Addr addr, const void* src, size_t size)
{
    const uint8_t* s = static_cast<const uint8_t*>(src);
    size_t i = 0;
    while (i < size) {
        uint32_t off = (addr + i) & (kPageSize - 1);
        size_t chunk = std::min<size_t>(size - i, kPageSize - off);
        noteWrite(addr + static_cast<Addr>(i));
        std::memcpy(page(addr + static_cast<Addr>(i)) + off, s + i, chunk);
        i += chunk;
    }
}

inline void
Ram::readBlock(Addr addr, void* dst, size_t size) const
{
    uint8_t* d = static_cast<uint8_t*>(dst);
    size_t i = 0;
    while (i < size) {
        uint32_t off = (addr + i) & (kPageSize - 1);
        size_t chunk = std::min<size_t>(size - i, kPageSize - off);
        if (const uint8_t* p = pageIfPresent(addr + static_cast<Addr>(i)))
            std::memcpy(d + i, p + off, chunk);
        else
            std::memset(d + i, 0, chunk);
        i += chunk;
    }
}

} // namespace vortex::mem
