/**
 * @file
 * Functional backing store: a sparse paged model of the device-local memory
 * (the FPGA board DRAM of the paper). All functional loads/stores and the
 * host-side driver copies go through this object; the timing models only
 * carry addresses.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace vortex::mem {

/** Sparse RAM covering the full 32-bit physical space (64 KiB pages). */
class Ram
{
  public:
    static constexpr uint32_t kPageBits = 16;
    static constexpr uint32_t kPageSize = 1u << kPageBits;

    uint8_t read8(Addr addr) const;
    uint16_t read16(Addr addr) const;
    uint32_t read32(Addr addr) const;
    float readFloat(Addr addr) const;

    void write8(Addr addr, uint8_t value);
    void write16(Addr addr, uint16_t value);
    void write32(Addr addr, uint32_t value);
    void writeFloat(Addr addr, float value);

    /** Bulk copy helpers used by the simulated PCIe driver. */
    void writeBlock(Addr addr, const void* src, size_t size);
    void readBlock(Addr addr, void* dst, size_t size) const;

    /** Zero everything (drop all pages). */
    void clear() { pages_.clear(); }

    /** Number of touched pages (for tests). */
    size_t numPages() const { return pages_.size(); }

  private:
    using Page = std::vector<uint8_t>;

    Page& page(Addr addr);
    const Page* pageIfPresent(Addr addr) const;

    std::unordered_map<uint32_t, Page> pages_;
};

inline Ram::Page&
Ram::page(Addr addr)
{
    uint32_t idx = addr >> kPageBits;
    auto it = pages_.find(idx);
    if (it == pages_.end())
        it = pages_.emplace(idx, Page(kPageSize, 0)).first;
    return it->second;
}

inline const Ram::Page*
Ram::pageIfPresent(Addr addr) const
{
    auto it = pages_.find(addr >> kPageBits);
    return it == pages_.end() ? nullptr : &it->second;
}

inline uint8_t
Ram::read8(Addr addr) const
{
    const Page* p = pageIfPresent(addr);
    return p ? (*p)[addr & (kPageSize - 1)] : 0;
}

inline void
Ram::write8(Addr addr, uint8_t value)
{
    page(addr)[addr & (kPageSize - 1)] = value;
}

inline uint16_t
Ram::read16(Addr addr) const
{
    return static_cast<uint16_t>(read8(addr)) |
           (static_cast<uint16_t>(read8(addr + 1)) << 8);
}

inline uint32_t
Ram::read32(Addr addr) const
{
    // Fast path: fully inside one page.
    uint32_t off = addr & (kPageSize - 1);
    if (off + 4 <= kPageSize) {
        if (const Page* p = pageIfPresent(addr)) {
            uint32_t v;
            std::memcpy(&v, p->data() + off, 4);
            return v;
        }
        return 0;
    }
    return static_cast<uint32_t>(read16(addr)) |
           (static_cast<uint32_t>(read16(addr + 2)) << 16);
}

inline void
Ram::write16(Addr addr, uint16_t value)
{
    write8(addr, value & 0xFF);
    write8(addr + 1, value >> 8);
}

inline void
Ram::write32(Addr addr, uint32_t value)
{
    uint32_t off = addr & (kPageSize - 1);
    if (off + 4 <= kPageSize) {
        std::memcpy(page(addr).data() + off, &value, 4);
        return;
    }
    write16(addr, value & 0xFFFF);
    write16(addr + 2, value >> 16);
}

inline float
Ram::readFloat(Addr addr) const
{
    uint32_t u = read32(addr);
    float f;
    std::memcpy(&f, &u, 4);
    return f;
}

inline void
Ram::writeFloat(Addr addr, float value)
{
    uint32_t u;
    std::memcpy(&u, &value, 4);
    write32(addr, u);
}

inline void
Ram::writeBlock(Addr addr, const void* src, size_t size)
{
    const uint8_t* s = static_cast<const uint8_t*>(src);
    size_t i = 0;
    while (i < size) {
        uint32_t off = (addr + i) & (kPageSize - 1);
        size_t chunk = std::min<size_t>(size - i, kPageSize - off);
        std::memcpy(page(addr + static_cast<Addr>(i)).data() + off, s + i,
                    chunk);
        i += chunk;
    }
}

inline void
Ram::readBlock(Addr addr, void* dst, size_t size) const
{
    uint8_t* d = static_cast<uint8_t*>(dst);
    size_t i = 0;
    while (i < size) {
        uint32_t off = (addr + i) & (kPageSize - 1);
        size_t chunk = std::min<size_t>(size - i, kPageSize - off);
        if (const Page* p = pageIfPresent(addr + static_cast<Addr>(i)))
            std::memcpy(d + i, p->data() + off, chunk);
        else
            std::memset(d + i, 0, chunk);
        i += chunk;
    }
}

} // namespace vortex::mem
