/**
 * @file
 * Board-memory timing simulator: the multi-channel DRAM behind the cache
 * hierarchy. Models the two knobs swept in Figure 21 — access latency and
 * bandwidth — plus channel-level parallelism (2 banks on the Arria 10 board,
 * 8 on the Stratix 10, paper §6.5).
 */

#pragma once

#include <functional>
#include <vector>

#include "common/elastic.h"
#include "common/stats.h"
#include "mem/memtypes.h"

namespace vortex::mem {

/** Configuration of the memory simulator. */
struct MemSimConfig
{
    uint32_t latency = 100;     ///< cycles from accept to response
    uint32_t lineSize = 64;     ///< bytes per transfer
    uint32_t busWidth = 16;     ///< bytes transferred per channel per cycle
    uint32_t numChannels = 2;   ///< independent channels (addr-interleaved)
    uint32_t queueDepth = 16;   ///< input queue depth
};

/**
 * Fixed-latency, bandwidth-limited memory. Each channel transfers one line
 * in lineSize/busWidth cycles of occupancy; a read responds latency cycles
 * after its transfer begins. Writes consume bandwidth but produce no
 * response (write-through traffic).
 */
class MemSim : public MemSink
{
  public:
    explicit MemSim(const MemSimConfig& config);

    // MemSink
    bool reqReady() const override { return !input_.full(); }
    void reqPush(const MemReq& req) override { input_.push(req); }

    void setRspCallback(std::function<void(const MemRsp&)> cb)
    {
        rspCallback_ = std::move(cb);
    }

    /** Advance one cycle. */
    void tick(Cycle now);

    /** No requests buffered or in flight. */
    bool idle() const { return input_.empty() && inflight_.empty(); }

    const MemSimConfig& config() const { return config_; }
    StatGroup& stats() { return stats_; }
    const StatGroup& stats() const { return stats_; }

  private:
    uint32_t channelOf(Addr lineAddr) const;

    MemSimConfig config_;
    uint32_t lineCycles_;
    ElasticQueue<MemReq> input_;
    std::vector<Cycle> channelFree_; ///< next cycle each channel is free

    struct Inflight
    {
        MemRsp rsp;
        Cycle readyAt;
    };
    std::vector<Inflight> inflight_;

    std::function<void(const MemRsp&)> rspCallback_;
    StatGroup stats_{"memsim"};

    // Hot-path counter handles (lazy CounterRef: byte-identical output).
    CounterRef ctrReads_{stats_, "reads"};
    CounterRef ctrWrites_{stats_, "writes"};
    CounterRef ctrBytes_{stats_, "bytes"};
    CounterRef ctrResponses_{stats_, "responses"};
};

} // namespace vortex::mem
