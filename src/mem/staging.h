/**
 * @file
 * Producer-local staging for requests into shared memory fabric.
 *
 * Under the parallel tick engine, cores tick concurrently; anything a core
 * pushes into a *shared* component (an L2/L3 lane, the board-memory router)
 * during its tick would race with its siblings and make timing depend on
 * thread scheduling. A StagedMemPort sits between each L1's memory side and
 * the shared downstream sink: pushes land in a buffer owned by the producer
 * (thread-safe without locks), and the Processor drains every buffer in
 * core order in a serial commit phase at the end of the cycle. The serial
 * backend uses the exact same path, so both backends see bit-identical
 * request streams.
 *
 * Timing-model note: relative to the pre-staging simulator, producers
 * observe shared-sink occupancy as of the start of the core phase rather
 * than mid-phase, so under contention a core may stage a request one cycle
 * earlier than it would previously have left the L1. This is a uniform,
 * deterministic refinement shared by both backends (no test pins absolute
 * cycle counts).
 */

#pragma once

#include <deque>

#include "mem/memtypes.h"

namespace vortex::mem {

/** A MemSink front that defers pushes to a serial drain() phase. */
class StagedMemPort final : public MemSink
{
  public:
    /**
     * @param down  the shared downstream sink (owned elsewhere)
     * @param depth staging capacity cap; sized to the producer's
     *              memory-queue depth so staging never throttles below the
     *              downstream's own acceptance rate
     */
    StagedMemPort(MemSink* down, size_t depth) : down_(down), depth_(depth) {}

    // MemSink (called from the producer, possibly on a worker thread).
    // Consulting down_->reqReady() here is safe and deterministic: shared
    // sinks are only *mutated* in the serial phases, so during the tick
    // phase every producer reads the same start-of-cycle snapshot. It also
    // keeps downstream back-pressure visible to the producer in the same
    // cycle instead of adding a full staging buffer of slack.
    bool
    reqReady() const override
    {
        return staged_.size() < depth_ && down_->reqReady();
    }

    void reqPush(const MemReq& req) override { staged_.push_back(req); }

    /** Commit phase: forward staged requests while the sink accepts.
     *  Leftovers keep back-pressuring the producer via reqReady(). */
    void
    drain()
    {
        while (!staged_.empty() && down_->reqReady()) {
            down_->reqPush(staged_.front());
            staged_.pop_front();
        }
    }

    bool empty() const { return staged_.empty(); }

  private:
    MemSink* down_;
    size_t depth_;
    std::deque<MemReq> staged_;
};

} // namespace vortex::mem
