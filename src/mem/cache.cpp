/**
 * @file
 * Non-blocking banked cache implementation.
 */

#include "mem/cache.h"

#include <algorithm>
#include <atomic>

#include "common/bitmanip.h"
#include "common/log.h"

namespace vortex::mem {

namespace {

/** Memory-side reqIds must be globally unique so fan-in routers can route
 *  responses; embed a per-instance id in the top bits (above both the
 *  fill pool's index/generation fields and the write marker bit 40). */
uint64_t
nextInstanceBase()
{
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1) << 41;
}

/** Marks an untracked (write) memory request id. */
constexpr uint64_t kWriteReqBit = 1ull << 40;

} // namespace

Cache::Bank::Bank(const CacheConfig& cfg, uint32_t index)
    : input(cfg.inputQueueDepth, "bank.input"),
      pipe(cfg.pipelineLatency)
{
    (void)index;
    uint32_t num_sets = cfg.size / (cfg.lineSize * cfg.numBanks *
                                    cfg.numWays);
    sets.assign(num_sets, std::vector<Way>(cfg.numWays));
}

Cache::Cache(const CacheConfig& config)
    : config_(config),
      memQueue_(config.memQueueDepth, "cache.memq"),
      instanceBase_(nextInstanceBase()),
      fillPool_(instanceBase_, "cache.fills"),
      stats_(config.name),
      ctrCoreReads_(stats_, "core_reads"),
      ctrCoreWrites_(stats_, "core_writes"),
      ctrCoreRsps_(stats_, "core_rsps"),
      ctrMemReqs_(stats_, "mem_reqs"),
      ctrMshrReplays_(stats_, "mshr_replays"),
      ctrFills_(stats_, "fills"),
      ctrMemqStalls_(stats_, "memq_stalls"),
      ctrWriteHits_(stats_, "write_hits"),
      ctrWriteMisses_(stats_, "write_misses"),
      ctrReadHits_(stats_, "read_hits"),
      ctrReadMisses_(stats_, "read_misses"),
      ctrMshrMerges_(stats_, "mshr_merges"),
      ctrMshrStalls_(stats_, "mshr_stalls"),
      ctrEvictions_(stats_, "evictions"),
      ctrSelCandidates_(stats_, "sel_candidates"),
      ctrSelInputFull_(stats_, "sel_input_full"),
      ctrSelAccepted_(stats_, "sel_accepted"),
      ctrSelConflicts_(stats_, "sel_conflicts")
{
    if (!isPow2(config.lineSize))
        fatal("cache '", config.name, "': lineSize must be a power of two");
    if (!isPow2(config.numBanks))
        fatal("cache '", config.name, "': numBanks must be a power of two");
    if (config.numWays == 0 || config.numPorts == 0 || config.numLanes == 0)
        fatal("cache '", config.name, "': zero-sized parameter");
    numSets_ = config.size /
               (config.lineSize * config.numBanks * config.numWays);
    if (numSets_ == 0 || !isPow2(numSets_))
        fatal("cache '", config.name,
              "': size/lineSize/banks/ways must give a power-of-two number "
              "of sets >= 1, got ", numSets_);
    banks_.reserve(config.numBanks);
    for (uint32_t b = 0; b < config.numBanks; ++b)
        banks_.emplace_back(config, b);
    lanes_.reserve(config.numLanes);
    for (uint32_t l = 0; l < config.numLanes; ++l)
        lanes_.emplace_back(config.laneQueueDepth, "cache.lane");
}

uint32_t
Cache::bankOf(Addr addr) const
{
    return (addr / config_.lineSize) & (config_.numBanks - 1);
}

uint32_t
Cache::setOf(Addr addr) const
{
    return (addr / config_.lineSize / config_.numBanks) & (numSets_ - 1);
}

uint32_t
Cache::tagOf(Addr addr) const
{
    return addr / config_.lineSize / config_.numBanks / numSets_;
}

bool
Cache::laneReady(uint32_t lane) const
{
    return !lanes_.at(lane).full();
}

void
Cache::lanePush(uint32_t lane, const CoreReq& req)
{
    lanes_.at(lane).push(req);
    ++pendingLaneReqs_;
    ++(req.write ? ctrCoreWrites_ : ctrCoreReads_);
}

void
Cache::memRsp(const MemRsp& rsp)
{
    memRspQueue_.push_back(rsp);
}

std::optional<uint32_t>
Cache::probe(Bank& bank, Addr addr) const
{
    uint32_t set = setOf(addr);
    uint32_t tag = tagOf(addr);
    auto& ways = bank.sets[set];
    for (uint32_t w = 0; w < ways.size(); ++w) {
        if (ways[w].valid && ways[w].tag == tag)
            return w;
    }
    return std::nullopt;
}

void
Cache::install(Bank& bank, Addr addr, Cycle now)
{
    uint32_t set = setOf(addr);
    uint32_t tag = tagOf(addr);
    auto& ways = bank.sets[set];
    // Already present (a second fill can race with flushAll in tests).
    for (Way& w : ways) {
        if (w.valid && w.tag == tag) {
            w.lastUsed = now;
            return;
        }
    }
    // Pick an invalid way, else evict LRU.
    Way* victim = nullptr;
    for (Way& w : ways) {
        if (!w.valid) {
            victim = &w;
            break;
        }
    }
    if (!victim) {
        victim = &ways[0];
        for (Way& w : ways) {
            if (w.lastUsed < victim->lastUsed)
                victim = &w;
        }
        ++ctrEvictions_;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUsed = now;
}

bool
Cache::mshrHasSpace(const Bank& bank) const
{
    return bank.mshr.size() < config_.mshrEntries;
}

Cache::MshrEntry*
Cache::mshrFind(Bank& bank, Addr lineAddr)
{
    for (MshrEntry& e : bank.mshr) {
        if (e.pendingFill && e.lineAddr == lineAddr)
            return &e;
    }
    return nullptr;
}

void
Cache::drainPipes(Cycle now)
{
    if (pipeWork_ == 0)
        return;
    for (Bank& bank : banks_) {
        while (auto op = bank.pipe.dequeueReady(now)) {
            --pipeWork_;
            if (op->memReq) {
                // Space was reserved with an early-full check at schedule.
                memQueue_.push(*op->memReq);
            }
            for (const PortReq& p : op->ports) {
                if (rspCallback_)
                    rspCallback_(CoreRsp{p.reqId, p.lane, op->write, p.tag});
                ++ctrCoreRsps_;
            }
        }
    }
}

void
Cache::drainMemQueue()
{
    while (!memQueue_.empty() && memSink_ && memSink_->reqReady()) {
        memSink_->reqPush(memQueue_.front());
        memQueue_.pop();
        ++ctrMemReqs_;
    }
}

void
Cache::schedule(Cycle now)
{
    if (bankWork_ == 0)
        return;
    // Count memory-queue credits consumed this cycle across banks so two
    // banks cannot both claim the last slot.
    size_t memq_free = memQueue_.capacity() - memQueue_.size();
    // Subtract credits already promised to ops still inside bank pipes.
    size_t promised = pipePromisedMemReqs_;
    memq_free = memq_free > promised ? memq_free - promised : 0;

    for (Bank& bank : banks_) {
        // Priority 1: replay a filled MSHR entry (one per cycle).
        if (!bank.replayQueue.empty()) {
            MshrEntry entry = std::move(bank.replayQueue.front());
            bank.replayQueue.pop_front();
            --bankWork_;
            PipeOp op;
            op.ports = std::move(entry.ports);
            bank.pipe.enqueue(std::move(op), now);
            ++pipeWork_;
            ++ctrMshrReplays_;
            continue;
        }
        // Priority 2: install an arrived fill and stage its replays.
        if (!bank.fillQueue.empty()) {
            Addr line_addr = bank.fillQueue.front();
            bank.fillQueue.pop_front();
            --bankWork_;
            install(bank, line_addr, now);
            // Move every MSHR entry waiting on this line to the replay
            // queue (merged entries replay back-to-back).
            for (auto it = bank.mshr.begin(); it != bank.mshr.end();) {
                if (it->lineAddr == line_addr) {
                    bank.replayQueue.push_back(std::move(*it));
                    ++bankWork_;
                    it = bank.mshr.erase(it);
                } else {
                    ++it;
                }
            }
            ++ctrFills_;
            continue;
        }
        // Priority 3: a core request from the bank input FIFO.
        if (bank.input.empty())
            continue;
        const BankReq& req = bank.input.front();
        if (req.write) {
            // Write-through: needs a memory-queue slot (early-full check).
            if (memq_free == 0) {
                ++ctrMemqStalls_;
                continue;
            }
            --memq_free;
            ++pipePromisedMemReqs_;
            if (auto way = probe(bank, req.lineAddr)) {
                bank.sets[setOf(req.lineAddr)][*way].lastUsed = now;
                ++ctrWriteHits_;
            } else {
                ++ctrWriteMisses_;
            }
            PipeOp op;
            op.ports = req.ports;
            op.write = true;
            MemReq mreq;
            mreq.lineAddr = req.lineAddr;
            mreq.write = true;
            mreq.reqId = instanceBase_ | kWriteReqBit | nextWriteReqId_++;
            mreq.tag = req.ports.front().tag;
            op.memReq = mreq;
            bank.pipe.enqueue(std::move(op), now);
            ++pipeWork_;
            bank.input.pop();
            --bankWork_;
            continue;
        }
        // Read.
        if (auto way = probe(bank, req.lineAddr)) {
            bank.sets[setOf(req.lineAddr)][*way].lastUsed = now;
            ++ctrReadHits_;
            PipeOp op;
            op.ports = req.ports;
            bank.pipe.enqueue(std::move(op), now);
            ++pipeWork_;
            bank.input.pop();
            --bankWork_;
            continue;
        }
        // Read miss: merge into a pending MSHR entry if one exists.
        if (MshrEntry* entry = mshrFind(bank, req.lineAddr)) {
            entry->ports.append(req.ports.begin(), req.ports.end());
            ++ctrMshrMerges_;
            ++ctrReadMisses_;
            bank.input.pop();
            --bankWork_;
            continue;
        }
        // New miss: needs an MSHR entry and a memory-queue slot.
        if (!mshrHasSpace(bank)) {
            ++ctrMshrStalls_;
            continue;
        }
        if (memq_free == 0) {
            ++ctrMemqStalls_;
            continue;
        }
        --memq_free;
        ++pipePromisedMemReqs_;
        ++ctrReadMisses_;
        MshrEntry entry;
        entry.lineAddr = req.lineAddr;
        entry.ports = req.ports;
        bank.mshr.push_back(std::move(entry));
        MemReq mreq;
        mreq.lineAddr = req.lineAddr;
        mreq.write = false;
        mreq.reqId = fillPool_.alloc(
            PendingFill{static_cast<uint32_t>(&bank - banks_.data()),
                        req.lineAddr});
        mreq.tag = req.ports.front().tag;
        PipeOp op; // carries only the memory request; responses come later
        op.memReq = mreq;
        bank.pipe.enqueue(std::move(op), now);
        ++pipeWork_;
        bank.input.pop();
        --bankWork_;
    }
}

void
Cache::selectBanks(Cycle now)
{
    (void)now;
    // Skip the bank x lane scan on the (common) cycles with no queued
    // lane requests at all.
    if (pendingLaneReqs_ == 0)
        return;
    // Gather head-of-queue candidates per bank.
    for (uint32_t b = 0; b < config_.numBanks; ++b) {
        Bank& bank = banks_[b];
        // Find candidate lanes.
        uint32_t candidates = 0;
        for (auto& lane : lanes_) {
            if (!lane.empty() && bankOf(lane.front().addr) == b)
                ++candidates;
        }
        if (candidates == 0)
            continue;
        ctrSelCandidates_ += candidates;
        if (bank.input.full()) {
            ctrSelInputFull_ += candidates;
            continue;
        }
        // Take the first candidate's line; coalesce same-line, same-type
        // requests into the virtual ports.
        BankReq breq;
        uint32_t taken = 0;
        for (auto& lane : lanes_) {
            if (lane.empty())
                continue;
            const CoreReq& creq = lane.front();
            if (bankOf(creq.addr) != b)
                continue;
            Addr line_addr = lineAddrOf(creq.addr);
            if (taken == 0) {
                breq.lineAddr = line_addr;
                breq.write = creq.write;
            } else if (line_addr != breq.lineAddr ||
                       creq.write != breq.write ||
                       taken >= config_.numPorts) {
                continue; // bank conflict: stays for a later cycle
            }
            breq.ports.push_back(PortReq{creq.reqId, creq.lane, creq.tag});
            lane.pop();
            --pendingLaneReqs_;
            ++taken;
        }
        bank.input.push(std::move(breq));
        ++bankWork_;
        ctrSelAccepted_ += taken;
        ctrSelConflicts_ += candidates - taken;
    }
}

void
Cache::tick(Cycle now)
{
    // 1. Matured pipeline ops emit responses / memory requests.
    size_t memq_before = memQueue_.size();
    drainPipes(now);
    size_t emitted = memQueue_.size() - memq_before;
    pipePromisedMemReqs_ -= std::min(pipePromisedMemReqs_, emitted);

    // 2. Forward memory requests downstream.
    drainMemQueue();

    // 3. Absorb memory responses into per-bank fill queues. A response
    // whose id the pool does not hold panics there ("unmatched request
    // id"), preserving the old unknown-fill check.
    while (!memRspQueue_.empty()) {
        const MemRsp& rsp = memRspQueue_.front();
        PendingFill fill = fillPool_.take(rsp.reqId);
        banks_[fill.bank].fillQueue.push_back(fill.lineAddr);
        ++bankWork_;
        memRspQueue_.pop_front();
    }

    // 4. Bank schedulers issue one operation each.
    schedule(now);

    // 5. Front-end bank selector moves lane heads into bank FIFOs.
    selectBanks(now);
}

bool
Cache::idle() const
{
    if (!memQueue_.empty() || !memRspQueue_.empty() || !fillPool_.empty())
        return false;
    for (const auto& lane : lanes_) {
        if (!lane.empty())
            return false;
    }
    for (const Bank& bank : banks_) {
        if (!bank.input.empty() || !bank.replayQueue.empty() ||
            !bank.fillQueue.empty() || !bank.mshr.empty() ||
            !bank.pipe.empty())
            return false;
    }
    return true;
}

void
Cache::flushAll()
{
    for (Bank& bank : banks_) {
        for (auto& set : bank.sets) {
            for (Way& w : set)
                w.valid = false;
        }
    }
    ++stats_.counter("flushes");
}

double
Cache::bankUtilization() const
{
    uint64_t accepted = stats_.get("sel_accepted");
    uint64_t conflicts = stats_.get("sel_conflicts");
    uint64_t total = accepted + conflicts;
    return total == 0 ? 1.0 : static_cast<double>(accepted) / total;
}

} // namespace vortex::mem
