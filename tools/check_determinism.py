#!/usr/bin/env python3
"""Determinism lint for the simulator sources.

The repo's determinism contract (ARCHITECTURE.md) promises bit-identical
outputs for identical specs, on any host, at any parallelism. This lint
flags the source patterns that historically break that promise:

  * range-for iteration over ``std::unordered_map`` / ``unordered_set``
    declared in the same file — hash-order iteration feeding results or
    output makes byte output host-dependent;
  * ``rand()`` / ``srand()`` / ``std::random_device`` — unseeded or
    host-seeded randomness (deterministic PRNGs like ``std::mt19937``
    with a fixed seed are fine and are not flagged);
  * ``time(...)`` / ``clock()`` / ``localtime`` / wall-clock seeding —
    timestamps in simulation results (the campaign layer's *reported*
    host wall-clock is an explicitly non-deterministic field and carries
    a suppression);
  * ``std::map`` / ``std::set`` keyed by pointers — iteration order
    tracks the allocator, not the program.

A finding on a line ending with ``// det-ok: <reason>`` is suppressed;
the reason is required so every exception is documented in place.

Dependency-free on purpose: stdlib only, runnable anywhere CI has a
Python 3. Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

import os
import re
import sys

# Directories under the determinism contract. graphics/ and tex/ feed
# rendered output and are included; tools/ and tests/ host-side code is
# allowed to read clocks (progress lines, wall-clock artifacts).
LINT_DIRS = ("src/core", "src/mem", "src/sweep", "src/common",
             "src/analysis", "src/isa", "src/runtime", "src/kernels",
             "src/graphics", "src/tex", "src/area", "src/faults")

SUPPRESS = re.compile(r"//\s*det-ok:\s*\S")

UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{]*>\s*&?\s*(\w+)\s*[;,={)]")
RANGE_FOR = re.compile(r"\bfor\s*\([^;:()]*:\s*&?\s*([A-Za-z_]\w*)\s*\)")

BANNED = [
    (re.compile(r"(?<![\w.])s?rand\s*\("),
     "rand()/srand(): host-dependent randomness; use a fixed-seed PRNG"),
    (re.compile(r"\brandom_device\b"),
     "std::random_device: host entropy; use a fixed-seed PRNG"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time(): wall clock in simulation code"),
    (re.compile(r"(?<![\w.:])clock\s*\(\s*\)"),
     "clock(): host CPU time in simulation code"),
    (re.compile(r"\blocaltime\b"),
     "localtime: host timezone in simulation code"),
    (re.compile(r"\b(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*\s*[,>]"),
     "pointer-keyed ordered container: iteration order tracks the "
     "allocator"),
]


def strip_comments_and_strings(line):
    """Blank out string/char literals and // comments so patterns do not
    match inside them (the suppression marker is read before this)."""
    out = []
    i, n = 0, len(line)
    quote = None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def lint_file(path):
    findings = []
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        findings.append((path, 0, "cannot read file: %s" % e))
        return findings

    unordered_names = set()
    code_lines = []
    for lineno, raw in enumerate(lines, 1):
        suppressed = bool(SUPPRESS.search(raw))
        code = strip_comments_and_strings(raw)
        code_lines.append((lineno, code, suppressed))
        m = UNORDERED_DECL.search(code)
        if m:
            unordered_names.add(m.group(1))

    for lineno, code, suppressed in code_lines:
        if suppressed:
            continue
        for pattern, why in BANNED:
            if pattern.search(code):
                findings.append((path, lineno, why))
        m = RANGE_FOR.search(code)
        if m and m.group(1) in unordered_names:
            findings.append(
                (path, lineno,
                 "range-for over unordered container '%s': hash-order "
                 "iteration is host-dependent" % m.group(1)))
    return findings


def main(argv):
    root = argv[1] if len(argv) > 1 else "."
    if not os.path.isdir(os.path.join(root, "src")):
        print("usage: check_determinism.py [repo-root]", file=sys.stderr)
        return 2

    findings = []
    checked = 0
    for lint_dir in LINT_DIRS:
        full = os.path.join(root, lint_dir)
        if not os.path.isdir(full):
            continue
        for name in sorted(os.listdir(full)):
            if not name.endswith((".h", ".cpp")):
                continue
            checked += 1
            findings.extend(lint_file(os.path.join(full, name)))

    for path, lineno, why in findings:
        print("%s:%d: %s" % (os.path.relpath(path, root), lineno, why))
    print("checked %d file(s): %d finding(s)" % (checked, len(findings)))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
