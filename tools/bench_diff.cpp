/**
 * @file
 * bench_diff: compare two bench-trajectory JSON files (the
 * CampaignResult::writeBenchJson artifact, BENCH_PR.json) run by run.
 *
 * Two kinds of fields live in that artifact and they are diffed with
 * opposite severities:
 *  - *simulated* numbers (cycles, thread_instrs, the stats counters)
 *    are deterministic and machine-independent: under `--fail-on-cycles`
 *    any difference — including a missing or extra run — is an error
 *    (the CI bit-identity gate for host-perf work);
 *  - *host* numbers (host_seconds, total_host_seconds) measure the
 *    simulator on whatever machine produced the file: they are always
 *    report-only, printed as the perf trajectory delta.
 *
 * Usage: bench_diff BASELINE.json NEW.json [--fail-on-cycles]
 */

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

/**
 * Minimal JSON reader for the writeBenchJson shape (objects, arrays,
 * strings, numbers, bools). No dependency, position-tracked errors.
 */
class Parser
{
  public:
    explicit Parser(const std::string& text) : s_(text) {}

    /** Parse one JSON value and return true; false with a message on
     *  malformed input. */
    bool
    fail(const std::string& msg)
    {
        err_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    const std::string& error() const { return err_; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ >= s_.size() || s_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    /** Is @p c the next non-whitespace character? (not consumed) */
    bool
    peek(char c)
    {
        skipWs();
        return pos_ < s_.size() && s_[pos_] == c;
    }

    bool
    parseString(std::string& out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\' && pos_ + 1 < s_.size())
                ++pos_; // the artifact only escapes '"' and '\'
            out += s_[pos_++];
        }
        return consume('"');
    }

    bool
    parseNumber(double& out)
    {
        skipWs();
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return fail("expected number");
        try {
            out = std::stod(s_.substr(start, pos_ - start));
        } catch (const std::exception&) {
            return fail("malformed number");
        }
        return true;
    }

    /** Skip any JSON value (used for fields bench_diff ignores). */
    bool
    skipValue()
    {
        skipWs();
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        char c = s_[pos_];
        if (c == '"') {
            std::string tmp;
            return parseString(tmp);
        }
        if (c == '{' || c == '[') {
            char close = c == '{' ? '}' : ']';
            ++pos_;
            skipWs();
            if (peek(close)) {
                ++pos_;
                return true;
            }
            while (true) {
                if (c == '{') {
                    std::string key;
                    if (!parseString(key) || !consume(':'))
                        return false;
                }
                if (!skipValue())
                    return false;
                skipWs();
                if (peek(',')) {
                    ++pos_;
                    continue;
                }
                return consume(close);
            }
        }
        if (std::strncmp(s_.c_str() + pos_, "true", 4) == 0) {
            pos_ += 4;
            return true;
        }
        if (std::strncmp(s_.c_str() + pos_, "false", 5) == 0) {
            pos_ += 5;
            return true;
        }
        double d;
        return parseNumber(d);
    }

  private:
    const std::string& s_;
    size_t pos_ = 0;
    std::string err_;
};

/** One run row of a bench JSON file. */
struct BenchRun
{
    std::string id;
    double hostSeconds = 0.0;
    uint64_t cycles = 0;
    uint64_t threadInstrs = 0;
    std::map<std::string, uint64_t> stats;
};

/** The parts of a bench JSON file bench_diff compares. */
struct BenchFile
{
    std::string campaign;
    double totalHostSeconds = 0.0;
    std::vector<BenchRun> runs;
};

bool
parseRun(Parser& p, BenchRun& run)
{
    if (!p.consume('{'))
        return false;
    while (true) {
        std::string key;
        if (!p.parseString(key) || !p.consume(':'))
            return false;
        if (key == "id") {
            if (!p.parseString(run.id))
                return false;
        } else if (key == "host_seconds") {
            if (!p.parseNumber(run.hostSeconds))
                return false;
        } else if (key == "cycles" || key == "thread_instrs") {
            double d;
            if (!p.parseNumber(d))
                return false;
            (key == "cycles" ? run.cycles : run.threadInstrs) =
                static_cast<uint64_t>(d);
        } else if (key == "stats") {
            if (!p.consume('{'))
                return false;
            while (!p.peek('}')) {
                std::string k;
                double v;
                if (!p.parseString(k) || !p.consume(':') ||
                    !p.parseNumber(v))
                    return false;
                run.stats[k] = static_cast<uint64_t>(v);
                if (p.peek(','))
                    p.consume(',');
            }
            if (!p.consume('}'))
                return false;
        } else {
            if (!p.skipValue())
                return false;
        }
        if (p.peek(',')) {
            p.consume(',');
            continue;
        }
        return p.consume('}');
    }
}

bool
parseBenchFile(const std::string& path, BenchFile& out, std::string& err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    Parser p(text);
    if (!p.consume('{'))
        goto bad;
    while (true) {
        std::string key;
        if (!p.parseString(key) || !p.consume(':'))
            goto bad;
        if (key == "campaign") {
            if (!p.parseString(out.campaign))
                goto bad;
        } else if (key == "total_host_seconds") {
            if (!p.parseNumber(out.totalHostSeconds))
                goto bad;
        } else if (key == "runs") {
            if (!p.consume('['))
                goto bad;
            while (!p.peek(']')) {
                BenchRun run;
                if (!parseRun(p, run))
                    goto bad;
                out.runs.push_back(std::move(run));
                if (p.peek(','))
                    p.consume(',');
            }
            if (!p.consume(']'))
                goto bad;
        } else {
            if (!p.skipValue())
                goto bad;
        }
        if (p.peek(',')) {
            p.consume(',');
            continue;
        }
        if (!p.consume('}'))
            goto bad;
        return true;
    }
bad:
    err = path + ": " + p.error();
    return false;
}

const BenchRun*
findRun(const BenchFile& f, const std::string& id)
{
    for (const BenchRun& r : f.runs) {
        if (r.id == id)
            return &r;
    }
    return nullptr;
}

double
pctDelta(double base, double fresh)
{
    return base == 0.0 ? 0.0 : (fresh - base) / base * 100.0;
}

} // namespace

int
main(int argc, char** argv)
{
    bool fail_on_cycles = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--fail-on-cycles")
            fail_on_cycles = true;
        else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: bench_diff BASELINE.json NEW.json"
                " [--fail-on-cycles]\n"
                "Diffs two writeBenchJson artifacts (BENCH_PR.json).\n"
                "host_seconds deltas are always report-only;"
                " --fail-on-cycles exits 1\n"
                "when any simulated number (cycles, thread_instrs, stats)"
                " or the run set differs.\n");
            return 0;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        std::fprintf(stderr,
                     "bench_diff: need exactly two files (see --help)\n");
        return 2;
    }

    BenchFile base, fresh;
    std::string err;
    if (!parseBenchFile(paths[0], base, err) ||
        !parseBenchFile(paths[1], fresh, err)) {
        std::fprintf(stderr, "bench_diff: %s\n", err.c_str());
        return 2;
    }

    int sim_mismatches = 0;
    std::printf("%-12s %12s %12s   %10s %10s %8s\n", "run", "cycles(a)",
                "cycles(b)", "host_s(a)", "host_s(b)", "dhost");
    for (const BenchRun& b : base.runs) {
        const BenchRun* n = findRun(fresh, b.id);
        if (!n) {
            std::printf("%-12s missing from %s\n", b.id.c_str(),
                        paths[1].c_str());
            ++sim_mismatches;
            continue;
        }
        std::printf("%-12s %12llu %12llu   %10.4f %10.4f %+7.1f%%\n",
                    b.id.c_str(),
                    static_cast<unsigned long long>(b.cycles),
                    static_cast<unsigned long long>(n->cycles),
                    b.hostSeconds, n->hostSeconds,
                    pctDelta(b.hostSeconds, n->hostSeconds));
        if (n->cycles != b.cycles) {
            std::printf("  MISMATCH cycles: %llu -> %llu\n",
                        static_cast<unsigned long long>(b.cycles),
                        static_cast<unsigned long long>(n->cycles));
            ++sim_mismatches;
        }
        if (n->threadInstrs != b.threadInstrs) {
            std::printf("  MISMATCH thread_instrs: %llu -> %llu\n",
                        static_cast<unsigned long long>(b.threadInstrs),
                        static_cast<unsigned long long>(n->threadInstrs));
            ++sim_mismatches;
        }
        for (const auto& [k, v] : b.stats) {
            auto it = n->stats.find(k);
            uint64_t nv = it == n->stats.end() ? 0 : it->second;
            if (nv != v) {
                std::printf("  MISMATCH %s: %llu -> %llu\n", k.c_str(),
                            static_cast<unsigned long long>(v),
                            static_cast<unsigned long long>(nv));
                ++sim_mismatches;
            }
        }
        // Keys only the fresh file has are simulated-output drift too.
        for (const auto& [k, v] : n->stats) {
            if (!b.stats.count(k)) {
                std::printf("  MISMATCH %s: (absent) -> %llu\n", k.c_str(),
                            static_cast<unsigned long long>(v));
                ++sim_mismatches;
            }
        }
    }
    for (const BenchRun& n : fresh.runs) {
        if (!findRun(base, n.id)) {
            std::printf("%-12s only in %s\n", n.id.c_str(),
                        paths[1].c_str());
            ++sim_mismatches;
        }
    }
    std::printf("total_host_seconds: %.4f -> %.4f (%+.1f%%)\n",
                base.totalHostSeconds, fresh.totalHostSeconds,
                pctDelta(base.totalHostSeconds, fresh.totalHostSeconds));

    if (sim_mismatches) {
        std::printf("%d simulated-number mismatch(es)%s\n", sim_mismatches,
                    fail_on_cycles ? " -> FAIL" : " (report-only)");
        if (fail_on_cycles)
            return 1;
    } else {
        std::printf("simulated numbers identical\n");
    }
    return 0;
}
