/**
 * @file
 * `vortex_verify` — static verification of guest kernels.
 *
 * Assembles a kernel (a shipped one by name, or an assembly file) the
 * same way the driver does — native runtime first, kernel second — and
 * runs the static analyzer (src/analysis/) against the configured
 * machine instead of executing it:
 *
 *   vortex_verify --all
 *   vortex_verify --kernel sgemm
 *   vortex_verify --kernel bfs --json -
 *   vortex_verify --asm mykernel.s --set numWarps=8
 *   vortex_verify --asm boot.s --freestanding
 *
 * Exit status: 0 = every program verified clean (no errors, no
 * warnings), 1 = findings, 2 = usage or input error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "common/log.h"
#include "kernels/kernels.h"
#include "runtime/device.h"
#include "sweep/spec.h"

using namespace vortex;

namespace {

int
usage(int code)
{
    std::printf(
        "usage: vortex_verify [input] [options]\n"
        "\n"
        "input (exactly one):\n"
        "  --kernel NAME        verify a shipped kernel (see --list)\n"
        "  --asm FILE           verify an assembly file\n"
        "  --all                verify every shipped kernel\n"
        "  --list               list shipped kernel names and exit\n"
        "\n"
        "options:\n"
        "  --set F=V            override a machine config field, as in\n"
        "                       vortex_sweep (repeatable)\n"
        "  --freestanding       with --asm: do not prepend the native\n"
        "                       runtime (crt0 + spawn_tasks)\n"
        "  --json PATH          machine-readable report ('-' = stdout)\n"
        "  --quiet              suppress per-diagnostic text output\n"
        "  -h, --help           this text\n"
        "\n"
        "exit status: 0 = clean, 1 = findings, 2 = usage/input error\n");
    return code;
}

struct Job
{
    std::string name;
    std::string source;      ///< kernel assembly (appended to runtime)
    bool freestanding = false;
};

/** Assemble and analyze one job. @return the report. */
analysis::Report
verifyOne(const Job& job, const core::ArchConfig& config,
          isa::Program& program)
{
    isa::Assembler assembler(config.startPC);
    std::vector<isa::SourceUnit> units;
    if (!job.freestanding)
        units.push_back({"<runtime>", kernels::runtimeSource()});
    units.push_back({job.name, job.source});
    program = assembler.assembleUnits(units);
    return analysis::analyze(program,
                             runtime::analyzerOptions(config, program));
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

int
run(int argc, char** argv)
{
    std::vector<Job> jobs;
    core::ArchConfig config;
    sweep::WorkloadSpec unusedWl;
    std::string jsonPath;
    std::string asmPath;
    bool all = false;
    bool freestanding = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            return usage(0);
        } else if (arg == "--list") {
            for (const kernels::NamedKernel& k : kernels::allKernels())
                std::printf("%s\n", k.name);
            return 0;
        } else if (arg == "--kernel") {
            std::string name = value();
            const char* src = kernels::kernelSource(name);
            if (src == nullptr)
                fatal("unknown kernel '", name,
                      "' (see vortex_verify --list)");
            jobs.push_back({name, src, false});
        } else if (arg == "--asm") {
            asmPath = value();
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--set") {
            std::string kv = value();
            size_t eq = kv.find('=');
            if (eq == std::string::npos)
                fatal("--set expects FIELD=VALUE (got '", kv, "')");
            if (!sweep::applyField(config, unusedWl, kv.substr(0, eq),
                                   kv.substr(eq + 1)))
                fatal("unknown field '", kv.substr(0, eq),
                      "' (see vortex_sweep --fields)");
        } else if (arg == "--freestanding") {
            freestanding = true;
        } else if (arg == "--json") {
            jsonPath = value();
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
            return usage(2);
        }
    }

    if (all)
        for (const kernels::NamedKernel& k : kernels::allKernels())
            jobs.push_back({k.name, k.source(), false});
    if (!asmPath.empty())
        jobs.push_back({asmPath, readFile(asmPath), freestanding});
    if (jobs.empty()) {
        std::fprintf(stderr,
                     "one of --kernel/--asm/--all is required\n");
        return usage(2);
    }

    std::ostringstream json;
    json << "{\n  \"programs\": [";
    bool anyFindings = false;
    bool firstJson = true;
    for (const Job& job : jobs) {
        isa::Program program;
        analysis::Report report = verifyOne(job, config, program);
        if (!report.clean())
            anyFindings = true;
        if (!quiet) {
            std::ostringstream text;
            report.print(text, &program);
            std::printf("== %s: %s\n%s", job.name.c_str(),
                        report.clean() ? "clean" : "FINDINGS",
                        text.str().c_str());
        }
        std::ostringstream one;
        report.writeJson(one, &program);
        std::string body = one.str();
        // Splice the program name into the report object.
        body.insert(body.find('{') + 1,
                    "\n  \"name\": \"" + job.name + "\",");
        json << (firstJson ? "\n" : ",\n") << body;
        firstJson = false;
    }
    json << "  ]\n}\n";

    if (!jsonPath.empty()) {
        if (jsonPath == "-") {
            std::cout << json.str();
        } else {
            std::ofstream out(jsonPath);
            if (!out)
                fatal("cannot write '", jsonPath, "'");
            out << json.str();
        }
    }
    return anyFindings ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
