/**
 * @file
 * `vortex_sweep` — the unified simulation-campaign and fabric CLI.
 *
 * Thin wrapper over sweep::cliMain (src/sweep/cli.h), where the whole
 * grammar lives so the CLI-compat tests can drive it in-process.
 *
 *   vortex_sweep specs list
 *   vortex_sweep run --preset fig18 --jobs 4 --cache .sweep-cache
 *   vortex_sweep run --spec examples/specs/fig18.toml --jobs 0 --progress
 *   vortex_sweep run --preset perf_smoke --shard 0/2 --cache shard0
 *   vortex_sweep cache merge merged shard0 shard1
 *   vortex_sweep cache list merged
 *   vortex_sweep serve --listen /tmp/fabric.sock --cache merged --jobs 0
 *   vortex_sweep submit --socket /tmp/fabric.sock --spec sweep.toml
 *   vortex_sweep specs dump --preset fig18 fig18.toml
 *
 * Legacy flat-flag spellings (`vortex_sweep --preset fig18`,
 * `--cache-prune`, `--list`, ...) keep working; see `vortex_sweep -h`.
 */

#include <string>
#include <vector>

#include "sweep/cli.h"

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return vortex::sweep::cliMain(args);
}
