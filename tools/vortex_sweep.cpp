/**
 * @file
 * `vortex_sweep` — the unified simulation-campaign CLI.
 *
 * Runs a built-in preset (one per paper figure/table, plus ablations) or
 * an ad-hoc sweep assembled from --axis/--set arguments, fanning the run
 * matrix out over a host job pool with content-hash result caching, and
 * emits the campaign as CSV/JSON plus the figure-shaped report.
 *
 *   vortex_sweep --list
 *   vortex_sweep --preset fig18 --jobs 4 --cache .sweep-cache
 *   vortex_sweep --spec examples/specs/fig18.toml --jobs 0 --progress
 *   vortex_sweep --preset fig18 --dump-spec fig18.toml
 *   vortex_sweep --preset fig20 --arg size=128 --csv tex.csv --json -
 *   vortex_sweep --preset fig18_scaling --sample 10000 --timeseries ts.json
 *   vortex_sweep --preset perf_smoke --sample 2000 --bench-json BENCH.json
 *   vortex_sweep --axis kernel=sgemm,saxpy --axis cores=1,2,4 \
 *                --set numWarps=8 --jobs 0
 *   vortex_sweep --cache .sweep-cache --cache-prune --older-than 30
 *   vortex_sweep --fields
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "sweep/campaign.h"
#include "sweep/presets.h"
#include "sweep/specfile.h"

using namespace vortex;

namespace {

int
usage(int code)
{
    std::printf(
        "usage: vortex_sweep [mode] [options]\n"
        "\n"
        "modes:\n"
        "  --preset NAME        run a built-in preset (see --list)\n"
        "  --spec FILE          run the sweep described by a spec file\n"
        "                       (TOML or JSON; see docs/SWEEP_SPECS.md)\n"
        "  --axis F=V1,V2,...   add a sweep axis over field F (repeatable;\n"
        "                       first axis varies slowest; appends to\n"
        "                       --spec axes)\n"
        "  --dump-spec PATH     serialize the resolved sweep as a TOML\n"
        "                       spec file ('-' = stdout) and exit without\n"
        "                       running it\n"
        "  --list               list presets and exit\n"
        "  --fields             list sweepable fields and exit\n"
        "  --cache-prune        delete cached records under --cache DIR\n"
        "                       (all, or --older-than DAYS) and exit\n"
        "\n"
        "options:\n"
        "  --set F=V            fix field F to V in the base machine\n"
        "                       (repeatable, applied before the axes)\n"
        "  --arg K=V            preset parameter (fig20: size=N;\n"
        "                       fig21: paper=1)\n"
        "  --jobs N             concurrent runs (default 1; 0 = host CPUs)\n"
        "  --cache DIR          result-cache directory (skip unchanged "
        "runs)\n"
        "  --progress           per-run elapsed/ETA lines on stderr\n"
        "  --verify             statically verify every kernel/machine\n"
        "                       pair before running (vortex_verify's\n"
        "                       checks); fatal on analysis errors\n"
        "  --no-lpt             claim runs in matrix order instead of\n"
        "                       longest-first (output is identical either\n"
        "                       way; LPT only shortens wall-clock)\n"
        "  --sample N           snapshot device counters every N cycles\n"
        "                       (shorthand for --set sampleInterval=N)\n"
        "  --timeseries PATH    emit the per-interval counter time series\n"
        "                       as JSON ('-' = stdout); needs --sample\n"
        "  --bench-json PATH    emit host wall-clock + headline counters\n"
        "                       (the CI bench-trajectory artifact)\n"
        "  --older-than DAYS    with --cache-prune: only drop entries\n"
        "                       older than DAYS (fractions allowed)\n"
        "  --csv PATH           CSV output ('-' = stdout; default "
        "<name>.csv)\n"
        "  --json PATH          also emit JSON ('-' = stdout)\n"
        "  --no-csv             suppress the CSV file\n"
        "  --name NAME          campaign name for ad-hoc sweeps\n"
        "  --quiet              no per-run progress lines\n"
        "  -h, --help           this text\n");
    return code;
}

/** Split "field=v1,v2,v3" into an Axis. */
sweep::Axis
parseAxisArg(const std::string& arg)
{
    size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= arg.size())
        fatal("--axis expects FIELD=V1,V2,... (got '", arg, "')");
    std::string field = arg.substr(0, eq);
    std::vector<std::string> values;
    std::stringstream ss(arg.substr(eq + 1));
    std::string v;
    while (std::getline(ss, v, ','))
        if (!v.empty())
            values.push_back(v);
    if (values.empty())
        fatal("--axis ", field, ": no values");
    return sweep::Axis::sweep(field, values);
}

std::pair<std::string, std::string>
parseKeyValue(const char* flag, const std::string& arg)
{
    size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        fatal(flag, " expects KEY=VALUE (got '", arg, "')");
    return {arg.substr(0, eq), arg.substr(eq + 1)};
}

void
writeTo(const std::string& path, const std::string& what,
        const std::function<void(std::ostream&)>& emit)
{
    if (path == "-") {
        emit(std::cout);
        return;
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("cannot open ", path, " for writing");
    emit(out);
    std::fprintf(stderr, "wrote %s -> %s\n", what.c_str(), path.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    std::string presetName, csvPath, jsonPath, campaignName;
    std::string timeseriesPath, benchJsonPath, olderThan;
    std::string specPath, dumpSpecPath;
    std::vector<sweep::Axis> axes;
    std::vector<std::pair<std::string, std::string>> sets, presetArgs;
    sweep::CampaignOptions opts;
    opts.jobs = 1;
    opts.verbose = true;
    uint32_t sampleInterval = 0;
    bool list = false, fields = false, noCsv = false, cachePrune = false;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string a = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal(a, " expects an argument");
                return argv[++i];
            };
            if (a == "--preset")
                presetName = next();
            else if (a == "--spec")
                specPath = next();
            else if (a == "--dump-spec")
                dumpSpecPath = next();
            else if (a == "--progress")
                opts.progress = true;
            else if (a == "--no-lpt")
                opts.lpt = false;
            else if (a == "--verify")
                opts.verify = true;
            else if (a == "--axis")
                axes.push_back(parseAxisArg(next()));
            else if (a == "--set")
                sets.push_back(parseKeyValue("--set", next()));
            else if (a == "--arg")
                presetArgs.push_back(parseKeyValue("--arg", next()));
            else if (a == "--jobs")
                opts.jobs = sweep::parseU32Value("--jobs", next());
            else if (a == "--cache")
                opts.cacheDir = next();
            else if (a == "--sample")
                sampleInterval = sweep::parseU32Value("--sample", next());
            else if (a == "--timeseries")
                timeseriesPath = next();
            else if (a == "--bench-json")
                benchJsonPath = next();
            else if (a == "--cache-prune")
                cachePrune = true;
            else if (a == "--older-than")
                olderThan = next();
            else if (a == "--csv")
                csvPath = next();
            else if (a == "--json")
                jsonPath = next();
            else if (a == "--no-csv")
                noCsv = true;
            else if (a == "--name")
                campaignName = next();
            else if (a == "--quiet")
                opts.verbose = false;
            else if (a == "--list")
                list = true;
            else if (a == "--fields")
                fields = true;
            else if (a == "-h" || a == "--help")
                return usage(0);
            else {
                std::fprintf(stderr, "unknown argument '%s'\n",
                             a.c_str());
                return usage(2);
            }
        }
        if (list) {
            std::printf("%-18s %s\n", "preset", "description");
            for (const sweep::Preset& p : sweep::presets())
                std::printf("%-18s %s%s\n", p.name.c_str(),
                            p.description.c_str(),
                            p.table ? " [table]" : "");
            return 0;
        }
        if (fields) {
            std::printf("%-18s %s\n", "field", "description");
            for (const sweep::FieldInfo& f : sweep::sweepableFields())
                std::printf("%-18s %s\n", f.name, f.help);
            return 0;
        }
        if (cachePrune) {
            if (opts.cacheDir.empty())
                fatal("--cache-prune needs --cache DIR");
            double days = -1.0;
            if (!olderThan.empty()) {
                try {
                    size_t pos = 0;
                    days = std::stod(olderThan, &pos);
                    if (pos != olderThan.size() || days < 0.0)
                        throw std::invalid_argument(olderThan);
                } catch (const std::exception&) {
                    fatal("--older-than: cannot parse '", olderThan,
                          "' as a non-negative number of days");
                }
            }
            size_t removed = sweep::pruneCache(opts.cacheDir, days);
            size_t left = sweep::listCache(opts.cacheDir).size();
            std::fprintf(stderr,
                         "cache %s: pruned %zu entr%s, %zu left "
                         "(manifest.json rewritten)\n",
                         opts.cacheDir.c_str(), removed,
                         removed == 1 ? "y" : "ies", left);
            return 0;
        }
        if (!olderThan.empty())
            fatal("--older-than only applies to --cache-prune");
        if (presetName.empty() && axes.empty() && specPath.empty()) {
            std::fprintf(stderr, "nothing to do: give --preset, --spec, "
                                 "or --axis (see --list)\n");
            return usage(2);
        }
        if (!presetName.empty() && !specPath.empty())
            fatal("--preset does not combine with --spec (export the "
                  "preset with --dump-spec and edit the file instead)");

        //
        // Resolve the spec (or finished table) to run.
        //
        sweep::SweepSpec spec;
        std::function<sweep::ReportTable(const sweep::CampaignResult&)>
            report;
        if (!presetName.empty()) {
            if (!axes.empty())
                fatal("--axis does not combine with --preset; use --set "
                      "to fix base-machine fields, or drop --preset for "
                      "an ad-hoc sweep");
            if (!campaignName.empty())
                fatal("--name only applies to ad-hoc and --spec sweeps "
                      "(presets are named after themselves)");
            const sweep::Preset* p = sweep::findPreset(presetName);
            if (!p)
                fatal("unknown preset '", presetName,
                      "' (vortex_sweep --list)");
            if (p->table) {
                if (!sets.empty())
                    fatal("preset '", presetName,
                          "' is an area table; --set has no effect on "
                          "it");
                if (sampleInterval != 0 || !timeseriesPath.empty() ||
                    !benchJsonPath.empty())
                    fatal("preset '", presetName,
                          "' is an area table; it runs no simulation to "
                          "sample or time");
                if (!dumpSpecPath.empty())
                    fatal("preset '", presetName,
                          "' is an area table; it has no sweep spec to "
                          "dump");
                if (!presetArgs.empty())
                    fatal("preset '", presetName, "' takes no --arg '",
                          presetArgs[0].first, "'");
                // Area/synthesis presets produce their table directly.
                sweep::ReportTable t = p->table();
                std::string out = csvPath.empty() && !noCsv
                                      ? presetName + ".csv"
                                      : csvPath;
                if (!out.empty() && !noCsv)
                    writeTo(out, "table CSV", [&](std::ostream& os) {
                        t.writeCsv(os);
                    });
                if (!jsonPath.empty())
                    writeTo(jsonPath, "table JSON",
                            [&](std::ostream& os) { t.writeJson(os); });
                t.print(std::cout);
                return 0;
            }
            spec = p->sweep(presetArgs);
            report = p->report;
        } else if (!specPath.empty()) {
            if (!presetArgs.empty())
                fatal("--arg only applies to presets (spec files carry "
                      "their parameters in [base]/[workload])");
            spec = sweep::parseSpecFile(specPath);
            if (!campaignName.empty())
                spec.name = campaignName;
            // CLI axes append after the file's own (they vary fastest).
            for (sweep::Axis& a : axes)
                spec.axes.push_back(std::move(a));
            if (spec.axes.size() == 2)
                report = sweep::pivotIpc;
        } else {
            if (!presetArgs.empty())
                fatal("--arg only applies to presets (use --set for "
                      "base-machine fields)");
            spec.name = campaignName.empty() ? "custom" : campaignName;
            spec.description = "ad-hoc CLI sweep";
            spec.axes = std::move(axes);
            if (spec.axes.size() == 2)
                report = sweep::pivotIpc;
        }
        for (const auto& [k, v] : sets)
            if (!sweep::applyField(spec.base, spec.baseWorkload, k, v))
                fatal("--set: unknown field '", k,
                      "' (vortex_sweep --fields)");
        if (sampleInterval != 0)
            spec.base.sampleInterval = sampleInterval;
        if (!dumpSpecPath.empty()) {
            // Export instead of run: the resolved sweep (preset, spec
            // file, or ad-hoc axes, with --set/--sample folded in) as a
            // canonical TOML document.
            writeTo(dumpSpecPath, "sweep spec", [&](std::ostream& os) {
                sweep::writeSpecToml(spec, os);
            });
            return 0;
        }
        if (!timeseriesPath.empty()) {
            // Sampling may come from --sample, --set sampleInterval=N,
            // or an axis; an all-disabled matrix would emit an empty
            // (misleading) series, so reject it up front.
            bool anySampled = spec.base.sampleInterval != 0;
            if (!anySampled) {
                for (const sweep::RunSpec& r : spec.expand())
                    if (r.config.sampleInterval != 0) {
                        anySampled = true;
                        break;
                    }
            }
            if (!anySampled)
                fatal("--timeseries needs sampling enabled: add "
                      "--sample N (or --set sampleInterval=N)");
        }

        sweep::Campaign campaign(opts);
        std::fprintf(stderr, "campaign '%s': %zu runs, %u jobs%s\n",
                     spec.name.c_str(), spec.runCount(),
                     campaign.options().jobs,
                     opts.cacheDir.empty()
                         ? ""
                         : (" (cache: " + opts.cacheDir + ")").c_str());

        sweep::CampaignResult result = campaign.run(spec);

        if (!noCsv) {
            std::string out =
                csvPath.empty() ? spec.name + ".csv" : csvPath;
            writeTo(out, "campaign CSV",
                    [&](std::ostream& os) { result.writeCsv(os); });
        }
        if (!jsonPath.empty())
            writeTo(jsonPath, "campaign JSON",
                    [&](std::ostream& os) { result.writeJson(os); });
        if (!timeseriesPath.empty())
            writeTo(timeseriesPath, "time-series JSON",
                    [&](std::ostream& os) {
                        result.writeTimeSeriesJson(os);
                    });
        if (!benchJsonPath.empty())
            writeTo(benchJsonPath, "bench JSON", [&](std::ostream& os) {
                result.writeBenchJson(os);
            });

        if (report)
            report(result).print(std::cout);
        if (!opts.cacheDir.empty())
            std::fprintf(stderr, "cache: %u hit%s, %u miss%s\n",
                         result.cacheHits,
                         result.cacheHits == 1 ? "" : "s",
                         result.cacheMisses,
                         result.cacheMisses == 1 ? "" : "es");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
