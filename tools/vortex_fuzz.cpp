/**
 * @file
 * `vortex_fuzz` — differential fuzzing of the guest toolchain and the
 * simulator's tick backends.
 *
 * Each seed deterministically generates a well-formed guest program
 * (src/fuzz/), pushes it through the full object pipeline
 * (assemble -> VXOB write/read -> load/relocate), requires a clean
 * static-analysis report, then runs it on the serial and the parallel
 * backend and compares cycles, retired thread instructions, and the
 * guest-visible scratch memory byte-for-byte:
 *
 *   vortex_fuzz --seeds 100
 *   vortex_fuzz --seeds 50 --start 1000 --set numCores=4
 *   vortex_fuzz --dump 42
 *   vortex_fuzz --seeds 100 --coverage cov.json \
 *               --coverage-baseline ci/fuzz_coverage_baseline.json
 *
 * `--coverage` measures what the seed window's corpus exercises
 * (InstrKinds, decode paths, analyzer checks; see src/fuzz/coverage.h)
 * and writes the JSON report; `--coverage-baseline` additionally fails
 * the run when anything a pinned baseline covers is no longer
 * exercised. Both skip the differential runs — coverage is a static
 * property of the corpus.
 *
 * Exit status: 0 = every seed matched, 1 = divergence or a failed seed,
 * 2 = usage error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/log.h"
#include "fuzz/coverage.h"
#include "fuzz/fuzz.h"
#include "sweep/spec.h"

using namespace vortex;

namespace {

int
usage(int code)
{
    std::printf(
        "usage: vortex_fuzz [options]\n"
        "\n"
        "options:\n"
        "  --seeds N            number of seeds to run (default 100)\n"
        "  --start S            first seed (default 1)\n"
        "  --set F=V            override a machine config field, as in\n"
        "                       vortex_sweep (repeatable); the default\n"
        "                       machine is 2 cores x 2 wavefronts x 4\n"
        "                       threads\n"
        "  --dump SEED          print seed SEED's generated program and\n"
        "                       exit (for reproducing a report)\n"
        "  --coverage FILE      write the corpus-coverage JSON for the\n"
        "                       seed window and exit (no differential\n"
        "                       runs); '-' writes to stdout\n"
        "  --coverage-baseline FILE\n"
        "                       with --coverage: also compare against a\n"
        "                       pinned baseline JSON and exit 1 when any\n"
        "                       baseline coverage is lost\n"
        "  --verbose            print every seed, not just failures\n"
        "  -h, --help           this text\n"
        "\n"
        "exit status: 0 = all seeds matched, 1 = failures, 2 = usage\n");
    return code;
}

int
run(int argc, char** argv)
{
    uint64_t seeds = 100;
    uint64_t start = 1;
    bool verbose = false;
    std::string coveragePath;
    std::string baselinePath;
    core::ArchConfig config = fuzz::fuzzConfig();
    sweep::WorkloadSpec unusedWl;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            return usage(0);
        } else if (arg == "--seeds") {
            seeds = std::stoull(value());
        } else if (arg == "--start") {
            start = std::stoull(value());
        } else if (arg == "--dump") {
            fuzz::GeneratedKernel k =
                fuzz::generateKernel(std::stoull(value()));
            std::printf("%s", k.source.c_str());
            return 0;
        } else if (arg == "--set") {
            std::string kv = value();
            size_t eq = kv.find('=');
            if (eq == std::string::npos)
                fatal("--set expects FIELD=VALUE (got '", kv, "')");
            if (!sweep::applyField(config, unusedWl, kv.substr(0, eq),
                                   kv.substr(eq + 1)))
                fatal("unknown --set field '", kv.substr(0, eq), "'");
        } else if (arg == "--coverage") {
            coveragePath = value();
        } else if (arg == "--coverage-baseline") {
            baselinePath = value();
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            return usage(2);
        }
    }

    if (!baselinePath.empty() && coveragePath.empty()) {
        std::fprintf(stderr,
                     "--coverage-baseline requires --coverage\n");
        return usage(2);
    }

    if (!coveragePath.empty()) {
        fuzz::CoverageReport measured = fuzz::measureCoverage(
            start, static_cast<uint32_t>(seeds));
        std::string json = fuzz::coverageJson(measured);
        if (coveragePath == "-") {
            std::printf("%s", json.c_str());
        } else {
            std::ofstream out(coveragePath, std::ios::binary);
            if (!out)
                fatal("cannot write coverage file '", coveragePath, "'");
            out << json;
        }
        std::printf("corpus coverage over seeds [%llu, %llu): %zu "
                    "InstrKind(s), %zu decode path(s), %zu analyzer "
                    "check(s)\n",
                    static_cast<unsigned long long>(start),
                    static_cast<unsigned long long>(start + seeds),
                    measured.instrKinds.size(),
                    measured.decodePaths.size(),
                    measured.analyzerChecks.size());
        if (!baselinePath.empty()) {
            std::ifstream in(baselinePath, std::ios::binary);
            if (!in)
                fatal("cannot read coverage baseline '", baselinePath,
                      "'");
            std::ostringstream buf;
            buf << in.rdbuf();
            fuzz::CoverageReport baseline =
                fuzz::parseCoverageJson(buf.str(), baselinePath);
            std::string regressions =
                fuzz::coverageRegressions(baseline, measured);
            if (!regressions.empty()) {
                std::printf("coverage REGRESSED vs %s:\n%s",
                            baselinePath.c_str(), regressions.c_str());
                return 1;
            }
            std::printf("coverage is no worse than %s\n",
                        baselinePath.c_str());
        }
        return 0;
    }

    uint64_t failures = 0;
    for (uint64_t seed = start; seed < start + seeds; ++seed) {
        fuzz::FuzzResult r = fuzz::runDifferential(seed, config);
        if (r.ok) {
            if (verbose)
                std::printf("seed %llu: ok (%llu cycles, %llu instrs)\n",
                            static_cast<unsigned long long>(seed),
                            static_cast<unsigned long long>(r.cycles),
                            static_cast<unsigned long long>(
                                r.threadInstrs));
            continue;
        }
        ++failures;
        std::printf("seed %llu: FAIL\n%s\n--- generated program "
                    "(vortex_fuzz --dump %llu) ---\n%s\n",
                    static_cast<unsigned long long>(seed),
                    r.detail.c_str(),
                    static_cast<unsigned long long>(seed),
                    r.source.c_str());
    }
    std::printf("%llu/%llu seed(s) ok\n",
                static_cast<unsigned long long>(seeds - failures),
                static_cast<unsigned long long>(seeds));
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
